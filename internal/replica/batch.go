package replica

import (
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// Batching folds near-identical what-if specs — same normalized spec
// modulo the what-if stack — into one ensemble execution. Soundness rests
// on the PR 6 equivalence gate: each scenario branches from the shared
// as-is prefix and is bit-identical to a from-scratch run, so the slice of
// an ensemble result belonging to one member equals what that member's
// solo run would have produced. Only legacy-path specs (no fidelity
// routing) batch: surrogate routing decisions could differ between a
// member and the merged spec.

// batchable reports whether a normalized spec may join an ensemble batch.
func batchable(s scenario.Spec) bool {
	return s.Workflow == scenario.WorkflowWhatIf && s.Fidelity == "" && len(s.WhatIfs) > 0
}

// batchKey addresses the spec's batch family: the normalized spec with the
// what-if stack removed, hashed under a domain-separated fingerprint so a
// family key can never collide with a job hash.
func (c *Coordinator) batchKey(s scenario.Spec) (string, error) {
	s.WhatIfs = nil
	return s.Hash(c.fingerprint + "|batch")
}

// pendingBatch accumulates members of one batch family during the window.
// All fields are guarded by Coordinator.mu.
type pendingBatch struct {
	c       *Coordinator
	key     string
	members []*ticket
	whatifs []scenario.WhatIfSpec // current union, by member arrival
	timer   *time.Timer
	flushed bool
}

// mergeWhatIfs unions add into base by name. It fails when a name appears
// with a different definition (those members must run solo) or the union
// would exceed the spec bound.
func mergeWhatIfs(base, add []scenario.WhatIfSpec) ([]scenario.WhatIfSpec, bool) {
	byName := map[string]scenario.WhatIfSpec{}
	out := append([]scenario.WhatIfSpec(nil), base...)
	for _, w := range base {
		byName[w.Name] = w
	}
	for _, w := range add {
		if have, ok := byName[w.Name]; ok {
			if have != w {
				return nil, false
			}
			continue
		}
		byName[w.Name] = w
		out = append(out, w)
	}
	if len(out) > scenario.MaxWhatIfs {
		return nil, false
	}
	return out, true
}

// enrollLocked places a fresh ticket into its batch family, arming the
// flush timer on the family's first member. A ticket whose what-ifs cannot
// merge with the pending batch (name conflict or overflow) flushes that
// batch early and starts the next one. Caller holds c.mu.
func (c *Coordinator) enrollLocked(t *ticket) {
	key, err := c.batchKey(t.spec)
	if err != nil {
		// Cannot happen for a normalized spec; dispatch solo to be safe.
		go func() {
			if derr := c.dispatch(t); derr != nil {
				c.finalizeTicket(t, nil, derr)
			}
		}()
		return
	}
	obs.Event(t.tickCtx(), "batch.enroll",
		obs.String("family", key), obs.Int("whatifs", int64(len(t.spec.WhatIfs))))
	b := c.batches[key]
	if b != nil {
		if merged, ok := mergeWhatIfs(b.whatifs, t.spec.WhatIfs); ok {
			b.members = append(b.members, t)
			b.whatifs = merged
			t.mu.Lock()
			t.batch = b
			t.mu.Unlock()
			return
		}
		// Incompatible member: release the pending batch now and start a
		// new family window with this ticket.
		delete(c.batches, key)
		go b.flush()
	}
	b = &pendingBatch{c: c, key: key,
		members: []*ticket{t},
		whatifs: append([]scenario.WhatIfSpec(nil), t.spec.WhatIfs...)}
	b.timer = time.AfterFunc(c.batchWindow, b.flush)
	c.batches[key] = b
	t.mu.Lock()
	t.batch = b
	t.mu.Unlock()
}

// remove drops a member before flush (cancelled or abandoned while
// pending). Caller holds c.mu.
func (b *pendingBatch) remove(t *ticket) {
	for i, m := range b.members {
		if m == t {
			b.members = append(b.members[:i], b.members[i+1:]...)
			return
		}
	}
}

// flush closes the window and executes the batch: one member dispatches
// solo; several members merge into an ensemble spec whose result is sliced
// back to every waiter and published per-member into the shared store.
func (b *pendingBatch) flush() {
	c := b.c
	c.mu.Lock()
	if b.flushed {
		c.mu.Unlock()
		return
	}
	b.flushed = true
	if b.timer != nil {
		b.timer.Stop()
	}
	if c.batches[b.key] == b {
		delete(c.batches, b.key)
	}
	members := append([]*ticket(nil), b.members...)
	for _, m := range members {
		m.mu.Lock()
		m.batch = nil
		m.mu.Unlock()
	}
	c.mu.Unlock()

	switch len(members) {
	case 0:
		return
	case 1:
		t := members[0]
		if err := c.dispatch(t); err != nil {
			c.finalizeTicket(t, nil, err)
		}
		return
	}

	ens, err := c.ensembleTicket(members)
	if err != nil {
		for _, m := range members {
			c.finalizeTicket(m, nil, err)
		}
		return
	}
	c.batchExecs.Add(1)
	c.batchMembs.Add(int64(len(members)))
	go c.fanBack(ens, members)
}

// ensembleTicket builds (or attaches to) the ticket executing the merged
// spec, holding one interest reference per member.
func (c *Coordinator) ensembleTicket(members []*ticket) (*ticket, error) {
	espec := members[0].spec
	var merged []scenario.WhatIfSpec
	for _, m := range members {
		var ok bool
		if merged, ok = mergeWhatIfs(merged, m.spec.WhatIfs); !ok {
			// enrollLocked guarantees mergeability; defend anyway.
			return nil, scenario.ErrQueueFull
		}
	}
	sortWhatIfs(merged)
	espec.WhatIfs = merged
	espec, err := espec.Normalize()
	if err != nil {
		return nil, err
	}
	ehash, err := espec.Hash(c.fingerprint)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	ens, ok := c.tickets[ehash]
	if ok {
		ens.mu.Lock()
		ens.interest += len(members)
		ens.mu.Unlock()
	} else {
		// The ensemble execution reports its spans (dispatch, queue wait,
		// engine phases) into the first member's request trace; the other
		// members see their membership through batch.member/batch.slice
		// events carrying the ensemble's batch ID.
		ens = &ticket{c: c, hash: ehash, spec: espec,
			pri:  scenario.PriorityInteractive,
			done: make(chan struct{}), interest: len(members),
			tctx: members[0].tickCtx()}
		c.tickets[ehash] = ens
		c.registry[ehash] = ens
	}
	for _, m := range members {
		obs.Event(m.tickCtx(), "batch.member",
			obs.String("batch", ehash), obs.Int("members", int64(len(members))),
			obs.String("hash", m.hash))
	}
	// The merged spec can coincide with one member's own spec (its
	// what-ifs already cover the union); that member then IS the ensemble
	// — it must be dispatched like a fresh one, and must not point at
	// itself.
	ensIsMember := false
	for _, m := range members {
		if m == ens {
			ensIsMember = true
			continue
		}
		m.mu.Lock()
		m.ensemble = ens
		m.mu.Unlock()
	}
	c.mu.Unlock()
	if !ok || ensIsMember {
		if err := c.dispatch(ens); err != nil {
			c.finalizeTicket(ens, nil, err)
			return ens, nil // fanBack propagates the failure to members
		}
	}
	return ens, nil
}

// fanBack waits for the ensemble and settles every member: on success each
// member receives the slice of the ensemble result carrying exactly its
// what-ifs, re-addressed under the member's own hash and published to the
// shared store so future identical submissions are hits anywhere in the
// cluster.
func (c *Coordinator) fanBack(ens *ticket, members []*ticket) {
	<-ens.done
	ens.mu.Lock()
	res, err := ens.result, ens.err
	ens.mu.Unlock()
	for _, m := range members {
		if err != nil {
			c.finalizeTicket(m, nil, err)
			continue
		}
		mres := sliceResult(res, m.hash, m.spec)
		c.shared.Put(m.hash, mres)
		obs.Event(m.tickCtx(), "batch.slice",
			obs.String("batch", ens.hash), obs.String("hash", m.hash),
			obs.Int("scenarios", int64(len(mres.Scenarios))))
		c.finalizeTicket(m, mres, nil)
	}
	// Balance the members' interest references on the ensemble (each
	// finalized member no longer needs it; the ensemble itself is already
	// terminal, so these are pure bookkeeping).
	for range members {
		ens.Release()
	}
}

// sliceResult projects an ensemble result onto one member: the member's
// what-if scenarios in the member's declared order, under the member's own
// content address.
func sliceResult(ens *scenario.Result, hash string, spec scenario.Spec) *scenario.Result {
	out := *ens
	out.Hash = hash
	out.Spec = spec
	byName := map[string]scenario.ScenarioResult{}
	for _, sc := range ens.Scenarios {
		byName[sc.Name] = sc
	}
	out.Scenarios = nil
	for _, w := range spec.WhatIfs {
		if sc, ok := byName[w.Name]; ok {
			out.Scenarios = append(out.Scenarios, sc)
		}
	}
	return &out
}

// sortWhatIfs orders the merged stack by name so the ensemble spec is
// canonical regardless of member arrival order.
func sortWhatIfs(ws []scenario.WhatIfSpec) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].Name < ws[j-1].Name; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}
