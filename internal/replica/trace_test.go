package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// findSpan walks a snapshot tree (root + orphans) for a span by name.
func findSpan(n *obs.SpanNode, name string) *obs.SpanNode {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if m := findSpan(c, name); m != nil {
			return m
		}
	}
	return nil
}

func viewSpan(v obs.TraceView, name string) *obs.SpanNode {
	if s := findSpan(v.Root, name); s != nil {
		return s
	}
	for _, o := range v.Orphans {
		if s := findSpan(o, name); s != nil {
			return s
		}
	}
	return nil
}

// viewEvents collects every event of one name across the whole tree.
func viewEvents(v obs.TraceView, name string) []obs.EventNode {
	var out []obs.EventNode
	var walk func(*obs.SpanNode)
	walk = func(n *obs.SpanNode) {
		if n == nil {
			return
		}
		for _, e := range n.Events {
			if e.Name == name {
				out = append(out, e)
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(v.Root)
	for _, o := range v.Orphans {
		walk(o)
	}
	return out
}

func getTrace(t *testing.T, base, id string) obs.TraceView {
	t.Helper()
	resp, err := http.Get(base + "/debug/requests/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/requests/%s: %d", id, resp.StatusCode)
	}
	var v obs.TraceView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func postTraced(t *testing.T, base string, spec scenario.Spec, reqID string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/scenarios?wait=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		req.Header.Set("X-Request-Id", reqID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, payload
}

// TestClusterTraceEndToEnd is the PR acceptance scenario: a request served
// through a 3-replica coordinator with ensemble batching produces a single
// retrievable trace at /debug/requests/{id} carrying the queue wait, the
// replica dispatch, the batch membership, the fidelity tier decision and
// the engine span. Two batchable what-ifs are posted; both traces see their
// batch membership and slice, and the member whose trace hosts the ensemble
// execution sees the full dispatch/engine path.
func TestClusterTraceEndToEnd(t *testing.T) {
	cr := newClusterRunner(3)
	c, _ := testCoordinator(t, 3, 2, 8, func(cfg *Config) {
		cfg.BatchWindow = 250 * time.Millisecond
		cfg.RunnerFor = func(rep int) scenario.Runner {
			base := cr.runnerFor(rep)
			return func(ctx context.Context, spec scenario.Spec) (*scenario.Result, error) {
				// Emit the engine-side shape the real pipeline produces: a
				// phase span plus the fidelity router's tier decision event.
				ectx, sp := obs.StartSpan(ctx, "engine.run", obs.Int("replica", int64(rep)))
				obs.Event(ectx, "fidelity.route",
					obs.String("tier", "metapop"), obs.String("reason", "stub"),
					obs.Float("uncertainty", 0.01))
				res, err := base(ectx, spec)
				sp.End()
				return res, err
			}
		}
	})
	for i := 0; i < 3; i++ {
		cr.release(i, 8)
	}
	so := scenario.NewServingObs(c.Registry(), scenario.ServingObsConfig{RecorderCapacity: 64})
	ts := httptest.NewServer(scenario.NewBackendServer(c, so))
	t.Cleanup(ts.Close)

	ids := map[string]string{"alpha": "aaaaaaaaaaaaaaaa", "beta": "bbbbbbbbbbbbbbbb"}
	var wg sync.WaitGroup
	var mu sync.Mutex
	results := map[string]*scenario.Result{}
	for name, id := range ids {
		wg.Add(1)
		go func(name, id string) {
			defer wg.Done()
			resp, payload := postTraced(t, ts.URL, whatIfSpec(name), id)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s: status %d: %s", name, resp.StatusCode, payload)
				return
			}
			if got := resp.Header.Get("X-Request-Id"); got != id {
				t.Errorf("%s: X-Request-Id echo %q", name, got)
			}
			var res scenario.Result
			if err := json.Unmarshal(payload, &res); err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			mu.Lock()
			results[name] = &res
			mu.Unlock()
		}(name, id)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for name, res := range results {
		if len(res.Scenarios) != 1 || res.Scenarios[0].Name != name {
			t.Fatalf("%s got wrong slice: %+v", name, res.Scenarios)
		}
	}

	views := map[string]obs.TraceView{}
	for name, id := range ids {
		views[name] = getTrace(t, ts.URL, id)
	}
	// Every member's trace shows its batch enrollment, membership and the
	// slice it received, all under the same ensemble batch ID.
	batchIDs := map[string]bool{}
	for name, v := range views {
		if len(viewEvents(v, "batch.enroll")) == 0 {
			t.Fatalf("%s: no batch.enroll event", name)
		}
		members := viewEvents(v, "batch.member")
		if len(members) == 0 {
			t.Fatalf("%s: no batch.member event", name)
		}
		if n, ok := members[0].Attrs["members"].(float64); !ok || n != 2 {
			t.Fatalf("%s: batch.member members attr = %v", name, members[0].Attrs)
		}
		batchIDs[members[0].Attrs["batch"].(string)] = true
		if len(viewEvents(v, "batch.slice")) == 0 {
			t.Fatalf("%s: no batch.slice event", name)
		}
	}
	if len(batchIDs) != 1 {
		t.Fatalf("members disagree on the ensemble batch ID: %v", batchIDs)
	}
	// The ensemble reports its execution into one member's trace: that
	// trace carries the full path — queue wait, replica dispatch, engine
	// phase span and the fidelity tier decision.
	full := 0
	for name, v := range views {
		qs := viewSpan(v, "queue.wait")
		dispatch := viewEvents(v, "replica.dispatch")
		engine := viewSpan(v, "engine.run")
		route := viewEvents(v, "fidelity.route")
		if qs == nil || len(dispatch) == 0 || engine == nil || len(route) == 0 {
			continue
		}
		full++
		if qs.Attrs["outcome"] != "run" {
			t.Fatalf("%s: queue.wait outcome %v", name, qs.Attrs)
		}
		if _, ok := dispatch[0].Attrs["replica"].(float64); !ok {
			t.Fatalf("%s: replica.dispatch attrs %v", name, dispatch[0].Attrs)
		}
		if route[0].Attrs["tier"] != "metapop" {
			t.Fatalf("%s: fidelity.route attrs %v", name, route[0].Attrs)
		}
		if viewSpan(v, "job.run") == nil {
			t.Fatalf("%s: no job.run span around the engine span", name)
		}
	}
	if full != 1 {
		t.Fatalf("ensemble execution reported into %d traces, want exactly 1", full)
	}
}

// TestStealHopTraced pins the work-steal hop in the trace: the stolen
// ticket's request trace shows its first queue.wait ending with outcome
// "stolen", the replica.steal event with the donor and receiver, and a
// second queue.wait on the receiving replica ending with outcome "run".
func TestStealHopTraced(t *testing.T) {
	c, cr := testCoordinator(t, 2, 1, 8, nil)
	traces := map[string]*obs.RequestTrace{}
	handles := map[string]scenario.Handle{}
	for _, st := range []string{"VA", "NC", "MD", "GA"} {
		rt := obs.NewRequestTrace("steal-" + st)
		ctx := rt.Attach(context.Background())
		h, err := c.Submit(ctx, predSpec(st, 20), scenario.PriorityNormal)
		if err != nil {
			t.Fatalf("submit %s: %v", st, err)
		}
		traces[st], handles[st] = rt, h
	}
	waitFor(t, "two runs started", func() bool {
		cr.mu.Lock()
		defer cr.mu.Unlock()
		n := 0
		for _, v := range cr.started {
			n += v
		}
		return n == 2
	})
	cr.release(1, 2)
	waitFor(t, "replica 1 idle", func() bool {
		st := c.ReplicaStatus().(ClusterStatus)
		return st.Replicas[1].Queued == 0 && st.Replicas[1].Running == 0
	})
	if moved := c.RebalanceOnce(); moved != 1 {
		t.Fatalf("RebalanceOnce moved %d, want 1", moved)
	}
	cr.release(0, 8)
	cr.release(1, 8)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for st, h := range handles {
		if _, err := h.Wait(ctx); err != nil {
			t.Fatalf("wait %s: %v", st, err)
		}
		h.Release()
	}

	stolen := 0
	for st, rt := range traces {
		v := rt.Snapshot()
		steals := viewEvents(v, "replica.steal")
		if len(steals) == 0 {
			continue
		}
		stolen++
		attrs := steals[0].Attrs
		from, fok := attrs["from"].(int64)
		to, tok := attrs["to"].(int64)
		if !fok || !tok || from == to {
			t.Fatalf("%s: replica.steal attrs %v", st, attrs)
		}
		// Two queue hops: the donor's wait ended "stolen", the receiver's
		// ended "run".
		outcomes := map[any]int{}
		var collect func(n *obs.SpanNode)
		collect = func(n *obs.SpanNode) {
			if n == nil {
				return
			}
			if n.Name == "queue.wait" {
				outcomes[n.Attrs["outcome"]]++
			}
			for _, c := range n.Children {
				collect(c)
			}
		}
		collect(v.Root)
		for _, o := range v.Orphans {
			collect(o)
		}
		if outcomes["stolen"] != 1 || outcomes["run"] != 1 {
			t.Fatalf("%s: queue.wait outcomes %v, want one stolen + one run", st, outcomes)
		}
	}
	if stolen != 1 {
		t.Fatalf("replica.steal appeared in %d traces, want exactly 1", stolen)
	}
}

// TestDeathRequeueTraced pins the death-requeue hop in the trace: when the
// replica running a traced job dies, the job's request trace records the
// replica.requeue event and a second replica.dispatch onto the surviving
// peer, with both queue waits ending in "run".
func TestDeathRequeueTraced(t *testing.T) {
	c, cr := testCoordinator(t, 2, 1, 8, nil)
	rt := obs.NewRequestTrace("requeue-victim")
	h, err := c.Submit(rt.Attach(context.Background()), predSpec("VA", 20), scenario.PriorityNormal)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	begun := <-cr.begun // "rep:ident" — learn which replica holds the job
	victim := int(begun[0] - '0')
	if !c.KillReplica(victim) {
		t.Fatalf("KillReplica(%d) refused", victim)
	}
	peer := 1 - victim
	cr.release(peer, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := h.Wait(ctx); err != nil {
		t.Fatalf("waiter lost across the requeue: %v", err)
	}

	v := rt.Snapshot()
	requeues := viewEvents(v, "replica.requeue")
	if len(requeues) != 1 {
		t.Fatalf("replica.requeue events = %d, want 1", len(requeues))
	}
	if from, ok := requeues[0].Attrs["from"].(int64); !ok || from != int64(victim) {
		t.Fatalf("replica.requeue attrs %v, want from=%d", requeues[0].Attrs, victim)
	}
	dispatches := viewEvents(v, "replica.dispatch")
	if len(dispatches) != 2 {
		t.Fatalf("replica.dispatch events = %d, want 2 (original + post-requeue)", len(dispatches))
	}
	if to, ok := dispatches[1].Attrs["replica"].(int64); !ok || to != int64(peer) {
		t.Fatalf("post-requeue dispatch attrs %v, want replica=%d", dispatches[1].Attrs, peer)
	}
}

// TestTracedClusterBitIdentity is the determinism gate for the tracing
// layer: the same workload through a 2-replica coordinator produces
// byte-identical results (timing field zeroed) whether serving
// observability is off or on with the flight recorder and request journal
// engaged — tracing reads clocks, never the simulation's RNG.
func TestTracedClusterBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("real pipeline cluster in short mode")
	}
	specs := []scenario.Spec{
		{
			Workflow: "prediction", State: "RI", Days: 25, Replicates: 2,
			Configs: []scenario.ParamSpec{{TAU: 0.22, SYMP: 0.6, SHCompliance: 0.4, VHICompliance: 0.4}},
		},
		{
			Workflow: "whatif", State: "RI", Days: 20, Replicates: 1,
			Configs: []scenario.ParamSpec{{TAU: 0.22, SYMP: 0.6, SHCompliance: 0.4, VHICompliance: 0.4}},
			WhatIfs: []scenario.WhatIfSpec{{Name: "sh-lifted-1w-early", SHEndShift: -7}},
		},
	}
	normalize := func(i int, payload []byte) string {
		var r scenario.Result
		if err := json.Unmarshal(payload, &r); err != nil {
			t.Fatal(err)
		}
		switch i {
		case 0:
			if r.Prediction == nil || len(r.Prediction.Confirmed.Median) != 25 {
				t.Fatalf("prediction result malformed: %+v", r.Prediction)
			}
		case 1:
			if len(r.Scenarios) != 1 {
				t.Fatalf("whatif result malformed: %+v", r.Scenarios)
			}
		}
		r.ElapsedSeconds = 0 // wall time: the only field allowed to differ
		out, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	run := func(traced bool) []string {
		p := core.NewPipeline(77, core.WithScale(40000), core.WithParallelism(2))
		c, err := NewCoordinator(Config{
			Replicas: 2,
			Base:     scenario.Config{Pipeline: p, Workers: 1, QueueCap: 8, CacheCap: 8},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			_ = c.Drain(ctx)
		}()
		var so *scenario.ServingObs
		if traced {
			col := obs.NewCollector(nil)
			so = scenario.NewServingObs(c.Registry(), scenario.ServingObsConfig{
				RecorderCapacity: 16, Journal: col,
			})
		}
		ts := httptest.NewServer(scenario.NewBackendServer(c, so))
		defer ts.Close()
		var out []string
		for i, spec := range specs {
			id := ""
			if traced {
				id = obs.NewRequestID()
			}
			resp, payload := postTraced(t, ts.URL, spec, id)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("spec %d (traced=%v): %d: %s", i, traced, resp.StatusCode, payload)
			}
			out = append(out, normalize(i, payload))
			if traced {
				v := getTrace(t, ts.URL, id)
				if viewSpan(v, "queue.wait") == nil || viewSpan(v, "job.run") == nil {
					t.Fatalf("spec %d: traced run missing queue.wait/job.run spans", i)
				}
			}
		}
		return out
	}
	plain := run(false)
	traced := run(true)
	for i := range specs {
		if plain[i] != traced[i] {
			t.Errorf("spec %d: traced result differs from untraced:\nuntraced: %.200s\ntraced:   %.200s",
				i, plain[i], traced[i])
		}
	}
}
