package replica

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/scenario"
)

// TestChaosKillReplicaMidRun is the PR 9 chaos gate: with a fault model
// choosing the victim and the kill moment, one of three replicas dies while
// a full load of jobs is queued and running. The gate asserts the three
// invariants of the ownership protocol:
//
//  1. no lost waiter — every submitted job's Wait returns a result;
//  2. no duplicate execution — no spec is ever running on two replicas at
//     once, and each completes exactly once;
//  3. requeue on a peer — the victim's in-flight work reappears on an up
//     replica (requeues counter advances) rather than failing.
func TestChaosKillReplicaMidRun(t *testing.T) {
	const (
		replicas = 3
		jobs     = 36
	)
	fm := faults.New(faults.Spec{Seed: 2020, TaskCrashProb: 1})
	// The fault model picks the victim and how deep into the run the crash
	// strikes — deterministic per seed, like every fault decision in the
	// repo.
	victim := int(fm.Jitter("chaos-victim", 0, 0, 0) * replicas)
	if victim >= replicas {
		victim = replicas - 1
	}

	var completions sync.Map // ident -> *atomic.Int64
	var liveMu sync.Mutex
	live := map[string]int{}
	var overlap atomic.Bool

	runnerFor := func(rep int) scenario.Runner {
		return func(ctx context.Context, spec scenario.Spec) (*scenario.Result, error) {
			ident := specIdent(spec)
			liveMu.Lock()
			live[ident]++
			if live[ident] > 1 {
				overlap.Store(true)
			}
			liveMu.Unlock()
			defer func() {
				liveMu.Lock()
				live[ident]--
				liveMu.Unlock()
			}()
			// Modeled service time, jittered per spec so the victim is
			// killed with a realistic mix of queued and mid-run work.
			d := time.Duration(2+6*fm.Jitter("chaos-svc", spec.Days, rep, 0)) * time.Millisecond
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(d):
			}
			n, _ := completions.LoadOrStore(ident, &atomic.Int64{})
			n.(*atomic.Int64).Add(1)
			return &scenario.Result{}, nil
		}
	}

	c, err := NewCoordinator(Config{
		Replicas: replicas,
		Base: scenario.Config{
			Workers: 2, QueueCap: 16, Fingerprint: "chaos",
			DrainGrace: 2 * time.Second,
		},
		RunnerFor:      runnerFor,
		RebalanceEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = c.Drain(ctx)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		h, err := c.Submit(context.Background(), predSpec("VA", 10+i), scenario.PriorityNormal)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		wg.Add(1)
		go func(i int, h scenario.Handle) {
			defer wg.Done()
			defer h.Release()
			_, errs[i] = h.Wait(ctx)
		}(i, h)
	}

	// Strike once the victim is actually working: kill mid-run, not at an
	// idle boundary.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := c.ReplicaStatus().(ClusterStatus)
		if st.Replicas[victim].Running > 0 && st.Replicas[victim].Queued > 0 {
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	if !c.KillReplica(victim) {
		t.Fatalf("KillReplica(%d) refused", victim)
	}

	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("waiter %d lost: %v", i, err)
		}
	}
	if overlap.Load() {
		t.Error("duplicate execution: a spec ran on two replicas concurrently")
	}
	singles := 0
	completions.Range(func(_, v any) bool {
		if n := v.(*atomic.Int64).Load(); n != 1 {
			t.Errorf("a spec completed %d times, want exactly 1", n)
		} else {
			singles++
		}
		return true
	})
	if singles != jobs {
		t.Errorf("%d specs completed exactly once, want %d", singles, jobs)
	}
	st := c.ReplicaStatus().(ClusterStatus)
	if st.Requeues == 0 && st.Steals == 0 {
		t.Error("the kill moved no work: expected requeues (running) or steals (queued) onto peers")
	}
	if st.Requeues == 0 {
		t.Error("no requeue recorded for the victim's in-flight jobs")
	}
	t.Logf("chaos: victim=%d requeues=%d steals=%d dispatched=%d",
		victim, st.Requeues, st.Steals, st.Dispatched)
}
