// Package replica runs N scenario.Service replicas behind one front door.
// The coordinator owns a second single-flight layer (tickets, keyed by the
// same content addresses the services use), a peer-shared result store so
// any replica serves any cached hash, work-stealing that drains a hot
// replica's backlog onto idle peers, windowed batching of near-identical
// what-if specs into one ensemble execution, and priority-class admission
// over the aggregate queue. It implements scenario.Backend, so the existing
// HTTP server fronts a cluster exactly as it fronts one service.
//
// Ownership protocol: every hash has at most one live ticket, and a live
// ticket has at most one underlying job on exactly one replica at a time.
// Jobs migrate only through two paths — StealQueued (queued work moving to
// an idle peer) and death requeue (a killed replica's cancelled jobs
// resubmitted elsewhere) — and both finalize the old job before the new
// dispatch exists, so a spec is never running on two replicas at once.
//
// Lock order: Coordinator.mu → ticket.mu → Service.mu → Job.mu.
package replica

import (
	"context"
	"errors"
	"sync"

	"repro/internal/scenario"
)

// ticket is the coordinator-level handle for one content address. Clients
// hold interest references on the ticket; the coordinator holds exactly one
// interest reference on whatever underlying job currently backs it. The
// backing job may move between replicas (steal, death requeue) without the
// ticket's waiters noticing.
type ticket struct {
	c    *Coordinator
	hash string
	spec scenario.Spec
	pri  scenario.Priority
	done chan struct{}
	// tctx carries the submitting request's tracing identity (obs.AdoptTrace
	// over context.Background(): values only, no cancellation) so dispatch,
	// steal, requeue and batch hops report into that request's trace no
	// matter which goroutine performs them. context.Background() itself for
	// untraced submissions. Set at creation; read-only afterwards.
	tctx context.Context

	mu  sync.Mutex
	job *scenario.Job  // current dispatch; nil while batched or migrating
	rep *replicaHandle // replica owning job
	// ensemble links a batched member to the ensemble ticket executing it;
	// the member holds one interest reference on the ensemble.
	ensemble *ticket
	// batch is the pending batch this ticket sits in before flush.
	batch *pendingBatch

	finalized bool
	result    *scenario.Result
	err       error
	cached    bool

	interest int
	pinned   bool
	shared   int64
	// clientCanceled marks an explicit Cancel (or interest abandonment), so
	// a death-requeue in flight finalizes as canceled instead of retrying.
	clientCanceled bool
}

// terminalTicket wraps an already-available result (shared-store hit) as a
// finalized handle; Release/Pin are no-ops.
func terminalTicket(hash string, res *scenario.Result) *ticket {
	t := &ticket{hash: hash, done: make(chan struct{}),
		finalized: true, result: res, cached: true}
	close(t.done)
	return t
}

// ID returns the spec's content address (scenario.Handle).
func (t *ticket) ID() string { return t.hash }

// tickCtx returns the ticket's trace-carrying context, never nil (ensemble
// tickets built outside Submit, and tests, may leave tctx unset).
func (t *ticket) tickCtx() context.Context {
	if t.tctx == nil {
		return context.Background()
	}
	return t.tctx
}

// Wait blocks until the ticket finalizes or ctx expires. As with Job.Wait,
// a ctx expiry does not release the caller's interest.
func (t *ticket) Wait(ctx context.Context) (*scenario.Result, error) {
	select {
	case <-t.done:
		t.mu.Lock()
		defer t.mu.Unlock()
		return t.result, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Status snapshots the ticket. Pending-batch members report "queued";
// dispatched tickets mirror their current job's state; ensemble members
// mirror the ensemble.
func (t *ticket) Status() scenario.JobStatus {
	t.mu.Lock()
	st := scenario.JobStatus{
		ID: t.hash, Workflow: t.spec.Workflow,
		Shared: t.shared, Cached: t.cached,
	}
	if t.finalized {
		switch {
		case t.err == nil:
			st.State = scenario.StateDone.String()
		case isCancel(t.err):
			st.State = scenario.StateCanceled.String()
		default:
			st.State = scenario.StateFailed.String()
		}
		if t.err != nil {
			st.Error = t.err.Error()
		}
		t.mu.Unlock()
		return st
	}
	if t.cached && t.result != nil {
		st.State = scenario.StateDone.String()
		t.mu.Unlock()
		return st
	}
	job, ens := t.job, t.ensemble
	t.mu.Unlock()
	switch {
	case job != nil:
		st.State = job.Status().State
	case ens != nil:
		st.State = ens.Status().State
	default:
		st.State = scenario.StateQueued.String() // batched, awaiting flush
	}
	// A live ticket whose backing job reports terminal is mid-migration;
	// from the waiter's perspective it is still in flight.
	switch st.State {
	case scenario.StateCanceled.String(), scenario.StateFailed.String(), scenario.StateDone.String():
		st.State = scenario.StateQueued.String()
	}
	return st
}

// Pin keeps the ticket alive independent of interest references.
func (t *ticket) Pin() {
	t.mu.Lock()
	t.pinned = true
	t.mu.Unlock()
}

// Release drops one interest reference; the last release of an unpinned,
// unfinalized ticket abandons the work (mirrors Job.Release).
func (t *ticket) Release() {
	if t.c == nil {
		return // terminal wrapper
	}
	t.c.releaseTicket(t)
}

// isCancel classifies context-style cancellation errors.
func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
