package synthpop

import (
	"math"
	"testing"
)

func TestGenerateWithLocations(t *testing.T) {
	ri, _ := StateByCode("RI")
	cfg := smallConfig(90)
	cfg.Scale = 2000
	net, lm, err := GenerateWithLocations(ri, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	stats := lm.Stats()
	// One residence per household.
	if stats.ByType[LocResidence] != len(net.Households()) {
		t.Fatalf("%d residences for %d households", stats.ByType[LocResidence], len(net.Households()))
	}
	// Activity locations of every type exist.
	for _, lt := range []LocationType{LocWork, LocSchool, LocShopping, LocReligion, LocOther} {
		if stats.ByType[lt] == 0 {
			t.Fatalf("no %v locations", lt)
		}
	}
	// Everyone has a home visit; most have several visits.
	visitsPer := map[int32]int{}
	for _, v := range lm.Visits {
		visitsPer[v.Person]++
	}
	if len(visitsPer) != net.NumNodes() {
		t.Fatalf("%d persons have visits, want %d", len(visitsPer), net.NumNodes())
	}
	multi := 0
	for _, n := range visitsPer {
		if n >= 3 {
			multi++
		}
	}
	if multi < net.NumNodes()/2 {
		t.Fatalf("only %d/%d persons have ≥3 activities", multi, net.NumNodes())
	}
}

// Every non-home contact derives from a shared location: the co-occupancy
// invariant of stage (iv).
func TestContactsImplyCoOccupancy(t *testing.T) {
	ri, _ := StateByCode("RI")
	cfg := smallConfig(91)
	cfg.Scale = 4000
	net, lm, err := GenerateWithLocations(ri, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// locsOf[p] = set of locations p visits.
	locsOf := map[int32]map[int32]bool{}
	for _, v := range lm.Visits {
		if locsOf[v.Person] == nil {
			locsOf[v.Person] = map[int32]bool{}
		}
		locsOf[v.Person][v.Location] = true
	}
	householdOf := map[int32]int32{}
	for i := range net.Persons {
		householdOf[net.Persons[i].ID] = net.Persons[i].HouseholdID
	}
	for pid, adj := range net.Adj {
		for _, e := range adj {
			if e.SrcContext == CtxHome {
				if householdOf[int32(pid)] != householdOf[e.Neighbor] {
					t.Fatalf("home contact across households: %d–%d", pid, e.Neighbor)
				}
				continue
			}
			shared := false
			for loc := range locsOf[int32(pid)] {
				if locsOf[e.Neighbor][loc] {
					shared = true
					break
				}
			}
			if !shared {
				t.Fatalf("contact %d–%d (%v) without a shared location", pid, e.Neighbor, e.SrcContext)
			}
		}
	}
}

func TestLocationNetworkComparableToBase(t *testing.T) {
	ri, _ := StateByCode("RI")
	cfg := smallConfig(92)
	cfg.Scale = 2000
	base, err := Generate(ri, cfg)
	if err != nil {
		t.Fatal(err)
	}
	withLoc, _, err := GenerateWithLocations(ri, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same population; contact volume within 2× of the base generator.
	if withLoc.NumNodes() != base.NumNodes() {
		t.Fatalf("node counts differ: %d vs %d", withLoc.NumNodes(), base.NumNodes())
	}
	ratio := withLoc.MeanDegree() / base.MeanDegree()
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("degree ratio %v (loc %v vs base %v)", ratio, withLoc.MeanDegree(), base.MeanDegree())
	}
}

func TestVisitorsOf(t *testing.T) {
	lm := &LocationModel{Visits: []Visit{
		{Person: 1, Location: 10}, {Person: 2, Location: 10}, {Person: 1, Location: 11},
	}}
	v := lm.VisitorsOf()
	if len(v[10]) != 2 || len(v[11]) != 1 {
		t.Fatalf("visitors wrong: %v", v)
	}
}

func TestLocationTypeNames(t *testing.T) {
	if LocWork.String() != "work" || LocationType(99).String() == "" {
		t.Fatal("location type names wrong")
	}
	if LocSchool.contextFor() != CtxSchool || LocResidence.contextFor() != CtxHome {
		t.Fatal("context mapping wrong")
	}
}

func TestDistance(t *testing.T) {
	a := Location{Lat: 38.03, Lon: -78.48} // Charlottesville
	b := Location{Lat: 40.44, Lon: -79.99} // Pittsburgh
	d := Distance(a, b)
	if math.Abs(d-300) > 40 {
		t.Fatalf("CHO–PIT distance %v km want ≈300", d)
	}
	if Distance(a, a) != 0 {
		t.Fatal("self distance nonzero")
	}
}
