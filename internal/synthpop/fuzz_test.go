package synthpop

import (
	"bytes"
	"testing"
)

// FuzzReadNetworkBinary hardens the binary loader against corrupted or
// adversarial files: it must either return an error or a structurally
// valid network, never panic or over-allocate.
func FuzzReadNetworkBinary(f *testing.F) {
	va, _ := StateByCode("VA")
	cfg := DefaultConfig(1)
	cfg.Scale = 100000
	cfg.MinPersons = 50
	net, err := Generate(va, cfg)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteNetworkBinary(&buf, net); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x48, 0x49, 0x50, 0x45, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadNetworkBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful parse must produce internally consistent data.
		if len(got.Adj) != len(got.Persons) {
			t.Fatal("adjacency/person mismatch accepted")
		}
		for _, adj := range got.Adj {
			for _, e := range adj {
				if int(e.Neighbor) >= len(got.Persons) || e.Neighbor < 0 {
					t.Fatal("out-of-range edge accepted")
				}
			}
		}
	})
}

// FuzzReadNetworkCSV does the same for the CSV edge format.
func FuzzReadNetworkCSV(f *testing.F) {
	f.Add("header\n0,1,home,home,0,30,1\n")
	f.Add("header\n")
	f.Add("header\n0,1,home\n")
	f.Add("header\n9,9,home,home,0,30,1\n")
	f.Fuzz(func(t *testing.T, data string) {
		persons := make([]Person, 5)
		for i := range persons {
			persons[i].ID = int32(i)
		}
		got, err := ReadNetworkCSV(bytes.NewBufferString(data), persons, "XX")
		if err != nil {
			return
		}
		for i, adj := range got.Adj {
			for _, e := range adj {
				if int(e.Neighbor) >= len(persons) || e.Neighbor == int32(i) && false {
					t.Fatal("bad edge accepted")
				}
			}
		}
	})
}

// FuzzReadPartitions hardens the partition-cache loader.
func FuzzReadPartitions(f *testing.F) {
	var buf bytes.Buffer
	_ = WritePartitions(&buf, []Partition{{FirstNode: 0, LastNode: 9, HalfEdges: 40}})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		parts, err := ReadPartitions(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(parts) > 1<<20 {
			t.Fatal("oversized partition list accepted")
		}
	})
}
