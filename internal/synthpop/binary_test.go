package synthpop

import (
	"bytes"
	"testing"
)

func TestBinaryNetworkRoundTrip(t *testing.T) {
	va, _ := StateByCode("VA")
	net, err := Generate(va, smallConfig(71))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteNetworkBinary(&buf, net); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNetworkBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Region != net.Region {
		t.Fatal("region lost")
	}
	if len(back.Persons) != len(net.Persons) {
		t.Fatalf("person count %d want %d", len(back.Persons), len(net.Persons))
	}
	for i := range net.Persons {
		if back.Persons[i] != net.Persons[i] {
			t.Fatalf("person %d changed: %+v vs %+v", i, back.Persons[i], net.Persons[i])
		}
	}
	if back.NumEdges() != net.NumEdges() {
		t.Fatalf("edges %d want %d", back.NumEdges(), net.NumEdges())
	}
	for i := range net.Adj {
		if len(back.Adj[i]) != len(net.Adj[i]) {
			t.Fatalf("degree of %d changed", i)
		}
		for j := range net.Adj[i] {
			if back.Adj[i][j] != net.Adj[i][j] {
				t.Fatalf("edge %d/%d changed: %+v vs %+v", i, j, back.Adj[i][j], net.Adj[i][j])
			}
		}
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBinarySmallerThanCSV(t *testing.T) {
	va, _ := StateByCode("VA")
	net, _ := Generate(va, smallConfig(73))
	var bin, csv bytes.Buffer
	if err := WriteNetworkBinary(&bin, net); err != nil {
		t.Fatal(err)
	}
	if err := WriteNetworkCSV(&csv, net); err != nil {
		t.Fatal(err)
	}
	// The binary holds both half-edges; CSV holds each edge once. Even
	// so the binary should not be more than ~1.2× the CSV, and per
	// half-edge it is much denser.
	perHalfBin := float64(bin.Len()) / float64(2*net.NumEdges())
	perEdgeCSV := float64(csv.Len()) / float64(net.NumEdges())
	if perHalfBin*2 > perEdgeCSV*1.5 {
		t.Fatalf("binary not compact: %.1fB/half-edge vs %.1fB/CSV edge", perHalfBin, perEdgeCSV)
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	va, _ := StateByCode("VA")
	net, _ := Generate(va, smallConfig(75))
	var buf bytes.Buffer
	if err := WriteNetworkBinary(&buf, net); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Bad magic.
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if _, err := ReadNetworkBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncation.
	if _, err := ReadNetworkBinary(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncated file accepted")
	}
	// Bad version.
	bad2 := append([]byte(nil), data...)
	bad2[4] = 99
	if _, err := ReadNetworkBinary(bytes.NewReader(bad2)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestPartitionCacheRoundTrip(t *testing.T) {
	va, _ := StateByCode("VA")
	net, _ := Generate(va, smallConfig(77))
	parts := net.PartitionNodes(6, 0.05)
	var buf bytes.Buffer
	if err := WritePartitions(&buf, parts); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPartitions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(parts) {
		t.Fatalf("%d partitions want %d", len(back), len(parts))
	}
	for i := range parts {
		if back[i] != parts[i] {
			t.Fatalf("partition %d changed", i)
		}
	}
	if err := ValidatePartitionsFor(back, net); err != nil {
		t.Fatal(err)
	}
}

func TestValidatePartitionsDetectsStaleCache(t *testing.T) {
	va, _ := StateByCode("VA")
	netA, _ := Generate(va, smallConfig(79))
	parts := netA.PartitionNodes(4, 0.05)
	// A different network: the cache is stale.
	cfgB := smallConfig(80)
	cfgB.OtherContacts = 9
	netB, _ := Generate(va, cfgB)
	if err := ValidatePartitionsFor(parts, netB); err == nil {
		t.Fatal("stale partition cache accepted")
	}
	if err := ValidatePartitionsFor(nil, netA); err == nil {
		t.Fatal("empty partitioning accepted")
	}
}

func TestReadPartitionsRejectsGarbage(t *testing.T) {
	if _, err := ReadPartitions(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("garbage partition file accepted")
	}
}
