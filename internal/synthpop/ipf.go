package synthpop

import (
	"fmt"
	"math"
)

// This file implements iterative proportional fitting (Deming & Stephan
// 1940; Beckman, Baggerly & McKay 1996), the method the paper's base
// population model uses to fit a joint person-attribute table to the
// marginal distributions published by the Census ("Using iterative
// proportional fitting (IPF) the base population model constructs a set of
// individuals P where each person has assigned demographic attributes").

// IPF fits a 2-D contingency table to target row and column marginals,
// starting from a seed table (e.g. PUMS microdata counts). It returns the
// fitted table; the seed's zero cells stay zero (structural zeros).
func IPF(seed [][]float64, rowTargets, colTargets []float64, maxIter int, tol float64) ([][]float64, error) {
	r := len(seed)
	if r == 0 {
		return nil, fmt.Errorf("synthpop: empty IPF seed")
	}
	c := len(seed[0])
	if len(rowTargets) != r || len(colTargets) != c {
		return nil, fmt.Errorf("synthpop: IPF marginals %d×%d do not match seed %d×%d",
			len(rowTargets), len(colTargets), r, c)
	}
	var rowSum, colSum float64
	for _, v := range rowTargets {
		if v < 0 {
			return nil, fmt.Errorf("synthpop: negative row target %g", v)
		}
		rowSum += v
	}
	for _, v := range colTargets {
		if v < 0 {
			return nil, fmt.Errorf("synthpop: negative column target %g", v)
		}
		colSum += v
	}
	if math.Abs(rowSum-colSum) > 1e-6*(1+rowSum) {
		return nil, fmt.Errorf("synthpop: IPF marginals disagree on total (%g vs %g)", rowSum, colSum)
	}
	table := make([][]float64, r)
	for i := range table {
		if len(seed[i]) != c {
			return nil, fmt.Errorf("synthpop: ragged IPF seed at row %d", i)
		}
		table[i] = append([]float64(nil), seed[i]...)
		for j, v := range table[i] {
			if v < 0 {
				return nil, fmt.Errorf("synthpop: negative seed cell (%d,%d)", i, j)
			}
		}
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	if tol <= 0 {
		tol = 1e-9
	}
	for iter := 0; iter < maxIter; iter++ {
		// Row scaling.
		for i := 0; i < r; i++ {
			s := 0.0
			for j := 0; j < c; j++ {
				s += table[i][j]
			}
			if s == 0 {
				if rowTargets[i] > 0 {
					return nil, fmt.Errorf("synthpop: row %d has target %g but an all-zero seed", i, rowTargets[i])
				}
				continue
			}
			f := rowTargets[i] / s
			for j := 0; j < c; j++ {
				table[i][j] *= f
			}
		}
		// Column scaling + convergence check.
		maxErr := 0.0
		for j := 0; j < c; j++ {
			s := 0.0
			for i := 0; i < r; i++ {
				s += table[i][j]
			}
			if s == 0 {
				if colTargets[j] > 0 {
					return nil, fmt.Errorf("synthpop: column %d has target %g but an all-zero seed", j, colTargets[j])
				}
				continue
			}
			f := colTargets[j] / s
			if e := math.Abs(f - 1); e > maxErr {
				maxErr = e
			}
			for i := 0; i < r; i++ {
				table[i][j] *= f
			}
		}
		if maxErr < tol {
			return table, nil
		}
	}
	return table, nil
}

// FitJointAgeHousehold uses IPF to build the joint (age band × household
// size) distribution from the pyramid and household-size marginals —
// the joint the generator samples from when both margins must match Census
// targets simultaneously. The seed encodes the structural constraints
// (children never live alone).
func FitJointAgeHousehold() ([][]float64, error) {
	// Rows: the five age bands; columns: household sizes 1–7.
	rows := len(agePyramid.probs)
	cols := len(householdSizeDist.sizes)
	seed := make([][]float64, rows)
	for i := range seed {
		seed[i] = make([]float64, cols)
		for j := range seed[i] {
			seed[i][j] = 1
		}
	}
	// Structural zeros: ages 0–4 and 5–17 never live in size-1
	// households.
	seed[0][0] = 0
	seed[1][0] = 0
	rowT := make([]float64, rows)
	colT := make([]float64, cols)
	for i := range rowT {
		rowT[i] = agePyramid.probs[i]
	}
	// Column marginal: persons per household size ∝ size × P(size).
	total := 0.0
	for j, size := range householdSizeDist.sizes {
		colT[j] = float64(size) * householdSizeDist.probs[j]
		total += colT[j]
	}
	for j := range colT {
		colT[j] /= total
	}
	// Normalize rows to the same total (1.0).
	return IPF(seed, rowT, colT, 200, 1e-10)
}
