package synthpop

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/disease"
)

func smallConfig(seed uint64) Config {
	c := DefaultConfig(seed)
	c.Scale = 20000
	c.MinPersons = 300
	return c
}

func TestStatesRegistry(t *testing.T) {
	if len(States) != 51 {
		t.Fatalf("%d regions want 51", len(States))
	}
	seen := map[string]bool{}
	for _, s := range States {
		if seen[s.Code] {
			t.Fatalf("duplicate state %s", s.Code)
		}
		seen[s.Code] = true
		if s.Population <= 0 || s.Counties <= 0 || s.FIPS <= 0 {
			t.Fatalf("bad state record %+v", s)
		}
	}
	// The paper: ~300 million nodes, 3140 counties.
	if pop := USPopulation(); pop < 320e6 || pop > 340e6 {
		t.Errorf("US population %d outside 320–340M", pop)
	}
	if c := TotalCounties(); c < 3100 || c > 3200 {
		t.Errorf("total counties %d want ≈3140", c)
	}
}

func TestStateByCode(t *testing.T) {
	va, err := StateByCode("VA")
	if err != nil || va.Name != "Virginia" || va.FIPS != 51 {
		t.Fatalf("VA lookup: %+v, %v", va, err)
	}
	if _, err := StateByCode("ZZ"); err == nil {
		t.Fatal("unknown state accepted")
	}
}

func TestCountyFIPSRoundTrip(t *testing.T) {
	f := CountyFIPS(51, 3)
	if StateOfCountyFIPS(f) != 51 {
		t.Fatalf("county FIPS roundtrip failed: %d", f)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	va, _ := StateByCode("VA")
	a, err := Generate(va, smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(va, smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Persons) != len(b.Persons) || a.NumEdges() != b.NumEdges() {
		t.Fatalf("same-seed generation differs: %d/%d vs %d/%d",
			len(a.Persons), a.NumEdges(), len(b.Persons), b.NumEdges())
	}
	for i := range a.Persons {
		if a.Persons[i] != b.Persons[i] {
			t.Fatalf("person %d differs", i)
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	va, _ := StateByCode("VA")
	a, _ := Generate(va, smallConfig(7))
	b, _ := Generate(va, smallConfig(8))
	diff := false
	for i := range a.Persons {
		if i < len(b.Persons) && a.Persons[i] != b.Persons[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical populations")
	}
}

func TestGenerateValidNetwork(t *testing.T) {
	va, _ := StateByCode("VA")
	net, err := Generate(va, smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateScalesWithPopulation(t *testing.T) {
	cfg := smallConfig(5)
	ca, _ := StateByCode("CA")
	wy, _ := StateByCode("WY")
	nCA, err := Generate(ca, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nWY, err := Generate(wy, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if nCA.NumNodes() <= nWY.NumNodes() {
		t.Fatalf("CA (%d) should exceed WY (%d)", nCA.NumNodes(), nWY.NumNodes())
	}
	if nCA.NumEdges() <= nWY.NumEdges() {
		t.Fatal("CA edges should exceed WY edges")
	}
}

func TestMeanDegreeNearPaper(t *testing.T) {
	// The US network is ≈300M nodes, 7.9B edges → mean degree ≈26.3 when
	// each edge contributes to two endpoints (2·E/V ≈ 52 half / 26 full).
	va, _ := StateByCode("VA")
	cfg := smallConfig(11)
	cfg.Scale = 5000
	net, err := Generate(va, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := net.MeanDegree()
	if d < 15 || d > 40 {
		t.Fatalf("mean degree %v outside the paper's regime (≈26)", d)
	}
}

func TestHouseholdsAreCliques(t *testing.T) {
	va, _ := StateByCode("VA")
	net, _ := Generate(va, smallConfig(13))
	for _, hh := range net.Households() {
		for _, m := range hh.Members {
			homeNbrs := map[int32]bool{}
			for _, e := range net.Adj[m] {
				if e.SrcContext == CtxHome {
					homeNbrs[e.Neighbor] = true
				}
			}
			for _, o := range hh.Members {
				if o != m && !homeNbrs[o] {
					t.Fatalf("household %d members %d,%d not connected at home", hh.ID, m, o)
				}
			}
		}
	}
}

func TestSchoolContactsOnlyForSchoolAges(t *testing.T) {
	va, _ := StateByCode("VA")
	net, _ := Generate(va, smallConfig(17))
	for i, adj := range net.Adj {
		for _, e := range adj {
			if e.SrcContext == CtxSchool {
				age := net.Persons[i].Age
				if age < 5 || age > 17 {
					t.Fatalf("person %d age %d has a school contact", i, age)
				}
			}
			if e.SrcContext == CtxCollege {
				age := net.Persons[i].Age
				if age < 18 || age > 22 {
					t.Fatalf("person %d age %d has a college contact", i, age)
				}
			}
		}
	}
}

func TestAgeDistributionPlausible(t *testing.T) {
	tx, _ := StateByCode("TX")
	cfg := smallConfig(19)
	cfg.Scale = 5000
	net, _ := Generate(tx, cfg)
	var bands [disease.NumAgeGroups]int
	for _, p := range net.Persons {
		bands[p.AgeGroup()]++
	}
	n := float64(len(net.Persons))
	adult := float64(bands[disease.Age18to49]) / n
	if adult < 0.30 || adult > 0.60 {
		t.Fatalf("18–49 share %v implausible", adult)
	}
	child := float64(bands[disease.Age0to4]) / n
	if child < 0.01 || child > 0.15 {
		t.Fatalf("0–4 share %v implausible", child)
	}
}

func TestCountiesPopulated(t *testing.T) {
	va, _ := StateByCode("VA")
	cfg := smallConfig(23)
	cfg.Scale = 2000
	net, _ := Generate(va, cfg)
	counties := map[int32]int{}
	for _, p := range net.Persons {
		counties[p.CountyFIPS]++
	}
	if len(counties) < 20 {
		t.Fatalf("only %d counties populated for VA (want a broad spread)", len(counties))
	}
	for fips := range counties {
		if StateOfCountyFIPS(int(fips)) != va.FIPS {
			t.Fatalf("county %d not in VA", fips)
		}
	}
}

func TestGenerateAll(t *testing.T) {
	cfg := smallConfig(63)
	cfg.Scale = 200000 // tiny per-state populations: the whole US quickly
	nets, err := GenerateAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) != 51 {
		t.Fatalf("%d networks want 51", len(nets))
	}
	for code, net := range nets {
		if net.Region != code {
			t.Fatalf("network for %s labeled %s", code, net.Region)
		}
		if net.NumNodes() < cfg.MinPersons {
			t.Fatalf("%s below the floor: %d", code, net.NumNodes())
		}
	}
}

func TestPartitionNodesCoversAll(t *testing.T) {
	va, _ := StateByCode("VA")
	net, _ := Generate(va, smallConfig(29))
	for _, p := range []int{1, 2, 4, 8} {
		parts := net.PartitionNodes(p, 0.05)
		if len(parts) > p {
			t.Fatalf("requested %d partitions, got %d", p, len(parts))
		}
		next := int32(0)
		total := 0
		for _, part := range parts {
			if part.FirstNode != next {
				t.Fatalf("gap before partition starting at %d", part.FirstNode)
			}
			if part.LastNode < part.FirstNode {
				t.Fatalf("inverted partition %+v", part)
			}
			next = part.LastNode + 1
			total += part.HalfEdges
		}
		if int(next) != net.NumNodes() {
			t.Fatalf("partitions cover %d of %d nodes", next, net.NumNodes())
		}
		if total != 2*net.NumEdges() {
			t.Fatalf("partition half-edges %d want %d", total, 2*net.NumEdges())
		}
	}
}

// TestPartitionNodesAligned pins what the shard-owned simulator depends
// on: every internal boundary lands on an align multiple (so no bitset
// word has two owners), coverage stays contiguous and complete, and the
// HalfEdges loads are consistent with the CSR after rounding.
func TestPartitionNodesAligned(t *testing.T) {
	va, _ := StateByCode("VA")
	net, _ := Generate(va, smallConfig(29))
	csr := net.CSR()
	for _, p := range []int{1, 2, 4, 8, 16} {
		for _, align := range []int{1, 8, 64} {
			parts := net.PartitionNodesAligned(p, 0.05, align)
			if len(parts) < 1 || len(parts) > p {
				t.Fatalf("p=%d align=%d: got %d partitions", p, align, len(parts))
			}
			next := int32(0)
			total := 0
			for i, part := range parts {
				if part.FirstNode != next {
					t.Fatalf("p=%d align=%d: gap before partition %d (starts %d, want %d)",
						p, align, i, part.FirstNode, next)
				}
				if align > 1 && part.FirstNode%int32(align) != 0 {
					t.Fatalf("p=%d align=%d: partition %d starts at unaligned node %d",
						p, align, i, part.FirstNode)
				}
				if part.LastNode < part.FirstNode {
					t.Fatalf("p=%d align=%d: inverted partition %+v", p, align, part)
				}
				if want := int(csr.Offsets[part.LastNode+1] - csr.Offsets[part.FirstNode]); part.HalfEdges != want {
					t.Fatalf("p=%d align=%d: partition %d carries %d half-edges, CSR says %d",
						p, align, i, part.HalfEdges, want)
				}
				next = part.LastNode + 1
				total += part.HalfEdges
			}
			if int(next) != net.NumNodes() {
				t.Fatalf("p=%d align=%d: coverage ends at %d of %d", p, align, next, net.NumNodes())
			}
			if total != 2*net.NumEdges() {
				t.Fatalf("p=%d align=%d: half-edges %d want %d", p, align, total, 2*net.NumEdges())
			}
		}
	}
	// align=1 must be the unrounded partitioner verbatim.
	plain := net.PartitionNodes(4, 0.05)
	flat := net.PartitionNodesAligned(4, 0.05, 1)
	if len(plain) != len(flat) {
		t.Fatalf("align=1 changed the partition count: %d != %d", len(flat), len(plain))
	}
	for i := range plain {
		if plain[i] != flat[i] {
			t.Fatalf("align=1 changed partition %d: %+v != %+v", i, flat[i], plain[i])
		}
	}
}

func TestPartitionBalanced(t *testing.T) {
	ca, _ := StateByCode("CA")
	cfg := smallConfig(31)
	cfg.Scale = 5000
	net, _ := Generate(ca, cfg)
	parts := net.PartitionNodes(6, 0.05)
	if imb := PartitionImbalance(parts); imb > 1.5 {
		t.Fatalf("partition imbalance %v too high", imb)
	}
}

func TestPartitionDegenerate(t *testing.T) {
	net := &Network{Region: "XX", Persons: make([]Person, 3), Adj: make([][]HalfEdge, 3)}
	parts := net.PartitionNodes(0, 0.1)
	if len(parts) != 1 {
		t.Fatalf("p=0 should yield one partition, got %d", len(parts))
	}
	if PartitionImbalance(nil) != 0 {
		t.Error("imbalance of no partitions should be 0")
	}
	if PartitionImbalance(parts) != 1 {
		t.Error("imbalance of zero-edge partition should be 1")
	}
}

func TestPartitionQuick(t *testing.T) {
	va, _ := StateByCode("VA")
	net, _ := Generate(va, smallConfig(37))
	err := quick.Check(func(pRaw uint8, epsRaw uint8) bool {
		p := int(pRaw%16) + 1
		eps := float64(epsRaw) / 255.0
		parts := net.PartitionNodes(p, eps)
		if len(parts) == 0 || len(parts) > p {
			return false
		}
		return int(parts[len(parts)-1].LastNode) == net.NumNodes()-1
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCSVPersonRoundTrip(t *testing.T) {
	va, _ := StateByCode("VA")
	net, _ := Generate(va, smallConfig(41))
	var buf bytes.Buffer
	if err := WritePersonsCSV(&buf, net); err != nil {
		t.Fatal(err)
	}
	persons, err := ReadPersonsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(persons) != len(net.Persons) {
		t.Fatalf("roundtrip count %d want %d", len(persons), len(net.Persons))
	}
	for i := range persons {
		a, b := persons[i], net.Persons[i]
		if a.ID != b.ID || a.Age != b.Age || a.CountyFIPS != b.CountyFIPS || a.HouseholdID != b.HouseholdID {
			t.Fatalf("person %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestCSVNetworkRoundTrip(t *testing.T) {
	va, _ := StateByCode("VA")
	net, _ := Generate(va, smallConfig(43))
	var buf bytes.Buffer
	if err := WriteNetworkCSV(&buf, net); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNetworkCSV(&buf, net.Persons, "VA")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != net.NumEdges() {
		t.Fatalf("edge count %d want %d", back.NumEdges(), net.NumEdges())
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	// Degree sequence preserved.
	for i := range net.Adj {
		if len(back.Adj[i]) != len(net.Adj[i]) {
			t.Fatalf("degree of %d changed: %d vs %d", i, len(back.Adj[i]), len(net.Adj[i]))
		}
	}
}

func TestReadNetworkCSVErrors(t *testing.T) {
	persons := make([]Person, 2)
	if _, err := ReadNetworkCSV(bytes.NewBufferString(""), persons, "XX"); err == nil {
		t.Error("empty file accepted")
	}
	bad := "header\n0,5,home,home,0,1,1\n"
	if _, err := ReadNetworkCSV(bytes.NewBufferString(bad), persons, "XX"); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	bad2 := "header\n0,1,nonsense,home,0,1,1\n"
	if _, err := ReadNetworkCSV(bytes.NewBufferString(bad2), persons, "XX"); err == nil {
		t.Error("bad context accepted")
	}
}

func TestParseContext(t *testing.T) {
	for c := Context(0); c < NumContexts; c++ {
		got, err := ParseContext(c.String())
		if err != nil || got != c {
			t.Fatalf("context roundtrip failed for %v", c)
		}
	}
	if _, err := ParseContext("zzz"); err == nil {
		t.Error("bad context accepted")
	}
}

func TestContextDegreeShare(t *testing.T) {
	va, _ := StateByCode("VA")
	net, _ := Generate(va, smallConfig(47))
	share := net.ContextDegreeShare()
	sum := 0.0
	for _, s := range share {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("context shares sum to %v", sum)
	}
	if share[CtxHome] < 0.02 {
		t.Errorf("home share %v implausibly low", share[CtxHome])
	}
	if share[CtxOther] == 0 || share[CtxShopping] == 0 {
		t.Error("shopping/other contexts missing")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	va, _ := StateByCode("VA")
	net, _ := Generate(va, smallConfig(53))
	// Self-loop.
	net.Adj[0] = append(net.Adj[0], HalfEdge{Neighbor: 0})
	if err := net.Validate(); err == nil {
		t.Fatal("self-loop not caught")
	}
	net.Adj[0] = net.Adj[0][:len(net.Adj[0])-1]
	// Asymmetric edge.
	net.Adj[1] = append(net.Adj[1], HalfEdge{Neighbor: 2, SrcContext: CtxOther, DstContext: CtxOther})
	if err := net.Validate(); err == nil {
		t.Fatal("asymmetric edge not caught")
	}
}

func TestEdgeByteEstimatesPositive(t *testing.T) {
	va, _ := StateByCode("VA")
	net, _ := Generate(va, smallConfig(59))
	if net.PersonBytes() <= 0 || net.EdgeBytes() <= 0 {
		t.Fatal("size estimates non-positive")
	}
	if net.EdgeBytes() < net.PersonBytes() {
		t.Error("edge file should dominate person file (degree ≈ 26)")
	}
}
