package synthpop

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// This file implements the binary network format ("the contact network,
// which, due to its large size, is in csv or binary format") and the
// partition cache ("we can also cache the result of the partitioning
// computation on disk, which saves time on future runs"). The binary forms
// are little-endian, versioned, and ~3× smaller and ~10× faster to load
// than the CSV form.

const (
	networkMagic     = 0x45504948 // "EPIH"
	networkVersionV1 = 1
	networkVersion   = 2
	partitionMagic   = 0x50415254 // "PART"
)

// WriteNetworkBinary writes persons + adjacency in the binary format.
// Version 2 stores the adjacency in CSR order — a degree table followed
// by one flat edge array — mirroring the in-memory layout the simulation
// kernel runs on, so a reader can materialize the whole adjacency as a
// single contiguous allocation.
func WriteNetworkBinary(w io.Writer, net *Network) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := []uint32{networkMagic, networkVersion, uint32(len(net.Persons))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := writeString(bw, net.Region); err != nil {
		return err
	}
	// Manual little-endian encoding: person records are 24 bytes, edge
	// records 16; reflection-based binary.Write is ~20× slower at these
	// volumes.
	var rec [24]byte
	le := binary.LittleEndian
	for i := range net.Persons {
		p := &net.Persons[i]
		le.PutUint32(rec[0:], uint32(p.ID))
		le.PutUint32(rec[4:], uint32(p.HouseholdID))
		rec[8] = p.Age
		rec[9] = uint8(p.Gender)
		rec[10], rec[11] = 0, 0
		le.PutUint32(rec[12:], uint32(p.CountyFIPS))
		le.PutUint32(rec[16:], math.Float32bits(p.HomeLat))
		le.PutUint32(rec[20:], math.Float32bits(p.HomeLon))
		if _, err := bw.Write(rec[:24]); err != nil {
			return err
		}
	}
	// CSR degree table, then every half-edge in row order.
	totalHalf := uint64(0)
	for i := range net.Adj {
		totalHalf += uint64(len(net.Adj[i]))
	}
	le.PutUint64(rec[0:], totalHalf)
	if _, err := bw.Write(rec[:8]); err != nil {
		return err
	}
	for i := range net.Adj {
		le.PutUint32(rec[0:], uint32(len(net.Adj[i])))
		if _, err := bw.Write(rec[:4]); err != nil {
			return err
		}
	}
	for i := range net.Adj {
		for _, e := range net.Adj[i] {
			le.PutUint32(rec[0:], uint32(e.Neighbor))
			rec[4] = uint8(e.SrcContext)
			rec[5] = uint8(e.DstContext)
			rec[6], rec[7] = 0, 0
			le.PutUint16(rec[8:], e.StartMin)
			le.PutUint16(rec[10:], e.DurationMin)
			le.PutUint32(rec[12:], math.Float32bits(e.Weight))
			if _, err := bw.Write(rec[:16]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadNetworkBinary reads a network written by WriteNetworkBinary. Both
// the CSR-ordered version-2 format and the interleaved version-1 format
// are accepted.
func ReadNetworkBinary(r io.Reader) (*Network, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic, version, n uint32
	for _, p := range []*uint32{&magic, &version, &n} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("synthpop: reading binary header: %w", err)
		}
	}
	if magic != networkMagic {
		return nil, fmt.Errorf("synthpop: bad magic %#x", magic)
	}
	if version != networkVersionV1 && version != networkVersion {
		return nil, fmt.Errorf("synthpop: unsupported network version %d", version)
	}
	region, err := readString(br)
	if err != nil {
		return nil, err
	}
	const maxPersons = 1 << 28
	if n > maxPersons {
		return nil, fmt.Errorf("synthpop: implausible person count %d", n)
	}
	net := &Network{Region: region, Persons: make([]Person, n), Adj: make([][]HalfEdge, n)}
	le := binary.LittleEndian
	var rec [24]byte
	for i := range net.Persons {
		if _, err := io.ReadFull(br, rec[:24]); err != nil {
			return nil, fmt.Errorf("synthpop: reading person %d: %w", i, err)
		}
		net.Persons[i] = Person{
			ID:          int32(le.Uint32(rec[0:])),
			HouseholdID: int32(le.Uint32(rec[4:])),
			Age:         rec[8],
			Gender:      Gender(rec[9]),
			CountyFIPS:  int32(le.Uint32(rec[12:])),
			HomeLat:     math.Float32frombits(le.Uint32(rec[16:])),
			HomeLon:     math.Float32frombits(le.Uint32(rec[20:])),
		}
	}
	if version == networkVersionV1 {
		return net, readAdjV1(br, net, n)
	}
	return net, readAdjV2(br, net, n)
}

// readAdjV1 reads the interleaved degree/edge rows of the version-1
// format, one allocation per row.
func readAdjV1(br *bufio.Reader, net *Network, n uint32) error {
	le := binary.LittleEndian
	var rec [16]byte
	for i := 0; i < int(n); i++ {
		if _, err := io.ReadFull(br, rec[:4]); err != nil {
			return fmt.Errorf("synthpop: reading degree of %d: %w", i, err)
		}
		deg := le.Uint32(rec[0:])
		if deg > 1<<24 {
			return fmt.Errorf("synthpop: implausible degree %d", deg)
		}
		adj := make([]HalfEdge, deg)
		for j := range adj {
			if err := readHalfEdge(br, rec[:], int32(n), &adj[j]); err != nil {
				return fmt.Errorf("synthpop: reading edge %d/%d: %w", i, j, err)
			}
		}
		net.Adj[i] = adj
	}
	return nil
}

// readAdjV2 reads the CSR-ordered version-2 adjacency: the degree table
// sizes one contiguous backing array, and every Adj row becomes a
// subslice of it — n rows, two allocations.
func readAdjV2(br *bufio.Reader, net *Network, n uint32) error {
	le := binary.LittleEndian
	var rec [16]byte
	if _, err := io.ReadFull(br, rec[:8]); err != nil {
		return fmt.Errorf("synthpop: reading half-edge total: %w", err)
	}
	totalHalf := le.Uint64(rec[0:])
	if totalHalf > uint64(n)*(1<<24) {
		return fmt.Errorf("synthpop: implausible half-edge total %d", totalHalf)
	}
	degrees := make([]uint32, n)
	sum := uint64(0)
	for i := range degrees {
		if _, err := io.ReadFull(br, rec[:4]); err != nil {
			return fmt.Errorf("synthpop: reading degree of %d: %w", i, err)
		}
		degrees[i] = le.Uint32(rec[0:])
		if degrees[i] > 1<<24 {
			return fmt.Errorf("synthpop: implausible degree %d", degrees[i])
		}
		sum += uint64(degrees[i])
	}
	if sum != totalHalf {
		return fmt.Errorf("synthpop: degree table sums to %d, header says %d", sum, totalHalf)
	}
	backing := make([]HalfEdge, totalHalf)
	for i := range backing {
		if err := readHalfEdge(br, rec[:], int32(n), &backing[i]); err != nil {
			return fmt.Errorf("synthpop: reading edge %d: %w", i, err)
		}
	}
	off := uint64(0)
	for i, deg := range degrees {
		net.Adj[i] = backing[off : off+uint64(deg) : off+uint64(deg)]
		off += uint64(deg)
	}
	return nil
}

func readHalfEdge(br *bufio.Reader, rec []byte, n int32, e *HalfEdge) error {
	if _, err := io.ReadFull(br, rec[:16]); err != nil {
		return err
	}
	le := binary.LittleEndian
	nbr := int32(le.Uint32(rec[0:]))
	if nbr < 0 || nbr >= n {
		return fmt.Errorf("edge endpoint %d out of range", nbr)
	}
	*e = HalfEdge{
		Neighbor:    nbr,
		SrcContext:  Context(rec[4]),
		DstContext:  Context(rec[5]),
		StartMin:    le.Uint16(rec[8:]),
		DurationMin: le.Uint16(rec[10:]),
		Weight:      math.Float32frombits(le.Uint32(rec[12:])),
	}
	return nil
}

// WritePartitions caches a partitioning to disk.
func WritePartitions(w io.Writer, parts []Partition) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, uint32(partitionMagic)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(parts))); err != nil {
		return err
	}
	for _, p := range parts {
		if err := binary.Write(bw, binary.LittleEndian, struct {
			First, Last int32
			HalfEdges   int64
		}{p.FirstNode, p.LastNode, int64(p.HalfEdges)}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPartitions loads a cached partitioning.
func ReadPartitions(r io.Reader) ([]Partition, error) {
	br := bufio.NewReader(r)
	var magic, n uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("synthpop: reading partition header: %w", err)
	}
	if magic != partitionMagic {
		return nil, fmt.Errorf("synthpop: bad partition magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("synthpop: implausible partition count %d", n)
	}
	parts := make([]Partition, n)
	for i := range parts {
		var rec struct {
			First, Last int32
			HalfEdges   int64
		}
		if err := binary.Read(br, binary.LittleEndian, &rec); err != nil {
			return nil, fmt.Errorf("synthpop: reading partition %d: %w", i, err)
		}
		parts[i] = Partition{FirstNode: rec.First, LastNode: rec.Last, HalfEdges: int(rec.HalfEdges)}
	}
	return parts, nil
}

// ValidatePartitionsFor checks that a cached partitioning matches the
// network it is applied to (coverage, ordering, half-edge totals) — the
// guard against applying a stale cache after a regeneration.
func ValidatePartitionsFor(parts []Partition, net *Network) error {
	if len(parts) == 0 {
		return fmt.Errorf("synthpop: empty partitioning")
	}
	next := int32(0)
	total := 0
	for i, p := range parts {
		if p.FirstNode != next || p.LastNode < p.FirstNode {
			return fmt.Errorf("synthpop: partition %d malformed or out of order", i)
		}
		count := 0
		for node := p.FirstNode; node <= p.LastNode; node++ {
			count += len(net.Adj[node])
		}
		if count != p.HalfEdges {
			return fmt.Errorf("synthpop: partition %d half-edge count %d does not match network %d (stale cache?)", i, p.HalfEdges, count)
		}
		total += count
		next = p.LastNode + 1
	}
	if int(next) != net.NumNodes() {
		return fmt.Errorf("synthpop: partitions cover %d of %d nodes", next, net.NumNodes())
	}
	return nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
