package synthpop

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Config controls population and network synthesis.
type Config struct {
	// Scale is the down-scaling factor: one synthetic person represents
	// Scale real residents. The paper runs at Scale=1 (300M persons);
	// the default here is 1000, giving ≈330k persons nationally.
	Scale int
	// Seed drives all randomness. Networks are deterministic in
	// (Seed, state), independent of generation order.
	Seed uint64
	// MinPersons floors tiny states so every region has a usable network.
	MinPersons int

	// Contact structure knobs (defaults tuned to reproduce the paper's
	// ≈26 mean degree and Figure 6 node/edge proportions).
	EmploymentRate   float64 // fraction of 18–64 adults employed
	CollegeRate      float64 // fraction of 18–22 attending college
	ReligionRate     float64 // fraction attending weekly services
	WorkContacts     int     // per-worker contacts within workplace
	SchoolContacts   int     // per-student contacts within school class
	CollegeContacts  int     // per-student contacts within college group
	ReligionContacts int     // per-attendee contacts within congregation
	ShoppingContacts int     // random shopping contacts initiated per person
	OtherContacts    int     // random "other" contacts initiated per person
}

// DefaultConfig returns the standard 1:1000 configuration.
func DefaultConfig(seed uint64) Config {
	return Config{
		Scale:            1000,
		Seed:             seed,
		MinPersons:       200,
		EmploymentRate:   0.62,
		CollegeRate:      0.45,
		ReligionRate:     0.35,
		WorkContacts:     8,
		SchoolContacts:   12,
		CollegeContacts:  8,
		ReligionContacts: 6,
		ShoppingContacts: 3,
		OtherContacts:    5,
	}
}

// withDefaults fills zero-valued knobs from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig(c.Seed)
	if c.Scale <= 0 {
		c.Scale = d.Scale
	}
	if c.MinPersons <= 0 {
		c.MinPersons = d.MinPersons
	}
	if c.EmploymentRate == 0 {
		c.EmploymentRate = d.EmploymentRate
	}
	if c.CollegeRate == 0 {
		c.CollegeRate = d.CollegeRate
	}
	if c.ReligionRate == 0 {
		c.ReligionRate = d.ReligionRate
	}
	if c.WorkContacts == 0 {
		c.WorkContacts = d.WorkContacts
	}
	if c.SchoolContacts == 0 {
		c.SchoolContacts = d.SchoolContacts
	}
	if c.CollegeContacts == 0 {
		c.CollegeContacts = d.CollegeContacts
	}
	if c.ReligionContacts == 0 {
		c.ReligionContacts = d.ReligionContacts
	}
	if c.ShoppingContacts == 0 {
		c.ShoppingContacts = d.ShoppingContacts
	}
	if c.OtherContacts == 0 {
		c.OtherContacts = d.OtherContacts
	}
	return c
}

// Generate builds the synthetic population and contact network for one
// region. The result is deterministic in (cfg.Seed, st.FIPS).
func Generate(st StateInfo, cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	n := st.Population / cfg.Scale
	if n < cfg.MinPersons {
		n = cfg.MinPersons
	}
	r := stats.NewRNG(cfg.Seed*1000003 + uint64(st.FIPS))

	net := &Network{Region: st.Code}

	// County weights follow a Zipf-like profile so each state has a few
	// populous counties and a long rural tail, mirroring real county
	// population skew.
	countyWeights := make([]float64, st.Counties)
	for i := range countyWeights {
		countyWeights[i] = 1 / math.Pow(float64(i+1), 0.8)
	}

	// Pseudo-geography: a state anchor derived from FIPS with county
	// offsets, enough to give every person plausible coordinates.
	stateLat := 30 + float32(st.FIPS%20)
	stateLon := -120 + float32(st.FIPS%45)

	// --- Households and persons ---
	var pid int32
	for int(pid) < n {
		size := sampleHouseholdSize(r)
		if int(pid)+size > n {
			size = n - int(pid)
		}
		county := r.Choice(countyWeights)
		fips := int32(CountyFIPS(st.FIPS, county))
		lat := stateLat + float32(county)/100 + float32(r.Norm())*0.05
		lon := stateLon + float32(county)/80 + float32(r.Norm())*0.05
		hh := Household{ID: int32(len(net.households)), CountyFIPS: fips, Lat: lat, Lon: lon}
		ages := sampleHouseholdAges(r, size)
		for _, age := range ages {
			g := Female
			if r.Bool(0.492) {
				g = Male
			}
			net.Persons = append(net.Persons, Person{
				ID: pid, HouseholdID: hh.ID, Age: age, Gender: g,
				CountyFIPS: fips, HomeLat: lat, HomeLon: lon,
			})
			hh.Members = append(hh.Members, pid)
			pid++
		}
		net.households = append(net.households, hh)
	}
	net.Adj = make([][]HalfEdge, len(net.Persons))

	// --- Home contacts: household cliques ---
	for _, hh := range net.households {
		for i := 0; i < len(hh.Members); i++ {
			for j := i + 1; j < len(hh.Members); j++ {
				net.addEdge(hh.Members[i], hh.Members[j], CtxHome, CtxHome, 18*60, 600, 1)
			}
		}
	}

	// --- Group-based contexts ---
	countyOf := func(p int32) int {
		return int(net.Persons[p].CountyFIPS) % 1000
	}
	byCounty := make([][]int32, st.Counties+1)
	for _, p := range net.Persons {
		c := countyOf(p.ID)
		if c > st.Counties {
			c = st.Counties
		}
		byCounty[c] = append(byCounty[c], p.ID)
	}

	// Workers: adults 18–64, employed at the configured rate. Workplaces
	// draw 80% from the home county and 20% from a random county
	// (commuting), grouped into workplaces of lognormal size.
	var workers []int32
	for _, p := range net.Persons {
		if p.Age >= 18 && p.Age <= 64 && r.Bool(cfg.EmploymentRate) {
			workers = append(workers, p.ID)
		}
	}
	r.Shuffle(len(workers), func(i, j int) { workers[i], workers[j] = workers[j], workers[i] })
	groupContacts(net, r, workers, 12, CtxWork, CtxWork, cfg.WorkContacts, 9*60, 480)

	// School: ages 5–17 in classes of ≈20 within their county.
	for _, members := range byCounty {
		var students []int32
		for _, id := range members {
			a := net.Persons[id].Age
			if a >= 5 && a <= 17 {
				students = append(students, id)
			}
		}
		groupContacts(net, r, students, 20, CtxSchool, CtxSchool, cfg.SchoolContacts, 8*60, 360)
	}

	// College: ages 18–22 statewide.
	var collegians []int32
	for _, p := range net.Persons {
		if p.Age >= 18 && p.Age <= 22 && r.Bool(cfg.CollegeRate) {
			collegians = append(collegians, p.ID)
		}
	}
	r.Shuffle(len(collegians), func(i, j int) { collegians[i], collegians[j] = collegians[j], collegians[i] })
	groupContacts(net, r, collegians, 30, CtxCollege, CtxCollege, cfg.CollegeContacts, 10*60, 240)

	// Religion: congregations of ≈30 within county.
	for _, members := range byCounty {
		var attendees []int32
		for _, id := range members {
			if r.Bool(cfg.ReligionRate) {
				attendees = append(attendees, id)
			}
		}
		groupContacts(net, r, attendees, 30, CtxReligion, CtxReligion, cfg.ReligionContacts, 10*60, 120)
	}

	// Shopping and other: random intra-county contacts. Shopping pairs a
	// shopper with a (possibly working) counterpart, so contexts differ
	// across the edge, matching the paper's shopper/grocer example.
	for _, members := range byCounty {
		m := len(members)
		if m < 2 {
			continue
		}
		for _, id := range members {
			for k := 0; k < cfg.ShoppingContacts; k++ {
				o := members[r.Intn(m)]
				if o == id {
					continue
				}
				dst := CtxShopping
				if r.Bool(0.5) {
					dst = CtxWork // store staff
				}
				net.addEdge(id, o, CtxShopping, dst, uint16(10*60+r.Intn(9*60)), 30, 1)
			}
			for k := 0; k < cfg.OtherContacts; k++ {
				o := members[r.Intn(m)]
				if o == id {
					continue
				}
				net.addEdge(id, o, CtxOther, CtxOther, uint16(8*60+r.Intn(12*60)), 60, 1)
			}
		}
	}
	return net, nil
}

// groupContacts partitions members into sequential groups of approximately
// groupSize and wires contacts within each group: a clique for tiny groups,
// otherwise k random partners per member.
func groupContacts(net *Network, r *stats.RNG, members []int32, groupSize int, cSrc, cDst Context, k int, start, dur uint16) {
	for lo := 0; lo < len(members); lo += groupSize {
		hi := lo + groupSize
		if hi > len(members) {
			hi = len(members)
		}
		group := members[lo:hi]
		if len(group) < 2 {
			continue
		}
		if len(group) <= 6 {
			for i := 0; i < len(group); i++ {
				for j := i + 1; j < len(group); j++ {
					net.addEdge(group[i], group[j], cSrc, cDst, start, dur, 1)
				}
			}
			continue
		}
		for i, u := range group {
			for c := 0; c < k/2+1 && c < len(group)-1; c++ {
				j := r.Intn(len(group))
				if j == i {
					continue
				}
				net.addEdge(u, group[j], cSrc, cDst, start, dur, 1)
			}
		}
	}
}

// GenerateAll builds networks for every region in States, in order. It is a
// convenience for national workflows; the per-state generation is
// independent, so callers wanting parallelism can invoke Generate from
// worker goroutines instead.
func GenerateAll(cfg Config) (map[string]*Network, error) {
	out := make(map[string]*Network, len(States))
	for _, st := range States {
		n, err := Generate(st, cfg)
		if err != nil {
			return nil, fmt.Errorf("synthpop: generating %s: %w", st.Code, err)
		}
		out[st.Code] = n
	}
	return out, nil
}
