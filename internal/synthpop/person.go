package synthpop

import (
	"repro/internal/disease"
	"repro/internal/stats"
)

// Gender is a person trait from the paper's population CSV schema.
type Gender uint8

// Gender values.
const (
	Female Gender = iota
	Male
)

// Person carries the traits of one synthetic individual (the paper's person
// CSV columns: household ID, age and age group, gender, county code, home
// coordinates).
type Person struct {
	ID          int32
	HouseholdID int32
	Age         uint8
	Gender      Gender
	CountyFIPS  int32
	HomeLat     float32
	HomeLon     float32
}

// AgeGroup returns the Table III age band for the person.
func (p *Person) AgeGroup() disease.AgeGroup { return disease.AgeGroupOf(int(p.Age)) }

// Household groups the persons residing at one dwelling unit.
type Household struct {
	ID         int32
	CountyFIPS int32
	Lat, Lon   float32
	Members    []int32
}

// householdSizeDist approximates the US household size distribution
// (ACS 2019): the mean is ≈ 2.5 persons per household.
var householdSizeDist = struct {
	sizes []int
	probs []float64
}{
	sizes: []int{1, 2, 3, 4, 5, 6, 7},
	probs: []float64{0.28, 0.35, 0.15, 0.13, 0.06, 0.02, 0.01},
}

// sampleHouseholdSize draws a household size.
func sampleHouseholdSize(r *stats.RNG) int {
	return householdSizeDist.sizes[r.Choice(householdSizeDist.probs)]
}

// agePyramid approximates the US age distribution over the five Table III
// bands, with uniform ages within bands.
var agePyramid = struct {
	probs [disease.NumAgeGroups]float64
	lo    [disease.NumAgeGroups]int
	hi    [disease.NumAgeGroups]int
}{
	probs: [disease.NumAgeGroups]float64{0.059, 0.163, 0.424, 0.192, 0.162},
	lo:    [disease.NumAgeGroups]int{0, 5, 18, 50, 65},
	hi:    [disease.NumAgeGroups]int{4, 17, 49, 64, 90},
}

// sampleAge draws an age in years from the pyramid.
func sampleAge(r *stats.RNG) uint8 {
	g := r.Choice(agePyramid.probs[:])
	lo, hi := agePyramid.lo[g], agePyramid.hi[g]
	return uint8(lo + r.Intn(hi-lo+1))
}

// sampleHouseholdAges draws the ages of a household of size n: the first
// one or two members are adults (a household has at least one adult), and
// remaining slots follow the overall pyramid restricted as needed.
func sampleHouseholdAges(r *stats.RNG, n int) []uint8 {
	ages := make([]uint8, n)
	ages[0] = uint8(18 + r.Intn(73)) // head of household: 18–90
	for i := 1; i < n; i++ {
		ages[i] = sampleAge(r)
	}
	return ages
}
