package synthpop

import (
	"fmt"
	"sync"
)

// Context is the setting in which a contact happens. The paper annotates
// each edge endpoint with its own context (a shopper meets a grocer who is
// working).
type Context uint8

// Contact contexts from the paper's network schema.
const (
	CtxHome Context = iota
	CtxWork
	CtxShopping
	CtxOther
	CtxSchool
	CtxCollege
	CtxReligion
	NumContexts
)

var contextNames = [NumContexts]string{
	"home", "work", "shopping", "other", "school", "college", "religion",
}

// String returns the context's display name.
func (c Context) String() string {
	if int(c) < len(contextNames) {
		return contextNames[c]
	}
	return fmt.Sprintf("Context(%d)", uint8(c))
}

// ParseContext maps a context name to its value.
func ParseContext(s string) (Context, error) {
	for i, n := range contextNames {
		if n == s {
			return Context(i), nil
		}
	}
	return 0, fmt.Errorf("synthpop: unknown context %q", s)
}

// HalfEdge is one direction of an undirected contact edge, stored in the
// adjacency list of its source node. Each undirected edge appears exactly
// twice in a Network, once per endpoint, with the contexts swapped.
type HalfEdge struct {
	Neighbor    int32   // the other endpoint's person ID
	SrcContext  Context // context of the owning node
	DstContext  Context // context of the neighbor
	StartMin    uint16  // start time, minutes into the day
	DurationMin uint16  // duration in minutes
	Weight      float32 // contact weight w_e
}

// Network is the contact network of one region: person records plus
// context-labelled adjacency.
type Network struct {
	Region  string // postal code
	Persons []Person
	// Adj[i] lists the contacts of person i (IDs are dense 0..n-1 within
	// a region's network).
	Adj [][]HalfEdge
	// CountyOfPerson caches the county FIPS per person for aggregation.
	households []Household

	csrOnce sync.Once
	csr     *CSR

	byCountyOnce sync.Once
	byCounty     map[int32][]int32
}

// PersonsByCounty returns the person IDs of every county, each list in
// ascending ID order (the order the seeding machinery draws from). The
// index is built once and shared: replicate fan-outs construct thousands of
// sims over one network, and rebuilding the map per sim was a measurable
// slice of construction time. The returned map and slices are shared — do
// not mutate.
func (n *Network) PersonsByCounty() map[int32][]int32 {
	n.byCountyOnce.Do(func() {
		m := make(map[int32][]int32)
		for i := range n.Persons {
			p := &n.Persons[i]
			m[p.CountyFIPS] = append(m[p.CountyFIPS], p.ID)
		}
		n.byCounty = m
	})
	return n.byCounty
}

// CSR is the compressed-sparse-row view of the adjacency: per-node
// offsets into contiguous half-edge arrays, in the same order as the Adj
// rows. The flat layout removes a pointer dereference per node and keeps
// the edge scan sequential in memory — the property Kitson et al.
// (arXiv:2401.08124) identify as what lets per-tick kernels scale to
// realistic networks. The per-edge fields are split structure-of-arrays
// style because the transmission kernel's common path (neighbor not
// infectious) needs only the 4-byte neighbor ID: scanning Nbr alone
// moves a quarter of the memory an array-of-structs row would.
type CSR struct {
	Offsets []int64 // len NumNodes()+1
	// Nbr, Ctx and TW are parallel arrays over all half-edges in row
	// order. Ctx packs the source context in bits 0-2 and the destination
	// context in bits 3-5 (NumContexts = 7 fits in 3 bits). TW is the
	// static part of the per-contact propensity, contact duration as a
	// fraction of a day times the contact weight — T·w_e of eq. (1) —
	// kept in float64 so the product matches bit-for-bit what the
	// reference kernel computed from DurationMin and Weight every tick.
	Nbr []int32
	Ctx []uint8
	TW  []float64
	// TWSum[i] and TWMax[i] are the sum and maximum of TW over node i's
	// row — upper-bound ingredients the simulator uses to reject nodes
	// without scanning their edges (TWMax sharpens the bound when only a
	// few of the node's contacts are infectious).
	TWSum []float64
	TWMax []float64
}

// CtxBits packs a (source, destination) context pair the way CSR.Ctx
// stores it.
func CtxBits(src, dst Context) uint8 { return uint8(src) | uint8(dst)<<3 }

// Neighbors returns the contiguous neighbor-ID block of node i.
func (c *CSR) Neighbors(i int32) []int32 {
	return c.Nbr[c.Offsets[i]:c.Offsets[i+1]]
}

// Degree returns the contact degree of node i.
func (c *CSR) Degree(i int32) int { return int(c.Offsets[i+1] - c.Offsets[i]) }

// CSR returns the flat compressed-sparse-row view of the network,
// building it on first use (safe for concurrent callers). The view is a
// snapshot: callers that mutate Adj afterwards — only tests do — must
// not mix the two representations.
func (n *Network) CSR() *CSR {
	n.csrOnce.Do(func() {
		total := 0
		for _, a := range n.Adj {
			total += len(a)
		}
		c := &CSR{
			Offsets: make([]int64, len(n.Adj)+1),
			Nbr:     make([]int32, 0, total),
			Ctx:     make([]uint8, 0, total),
			TW:      make([]float64, 0, total),
			TWSum:   make([]float64, len(n.Adj)),
			TWMax:   make([]float64, len(n.Adj)),
		}
		for i, adj := range n.Adj {
			sum, max := 0.0, 0.0
			for _, e := range adj {
				tw := float64(e.DurationMin) / 1440.0 * float64(e.Weight)
				c.Nbr = append(c.Nbr, e.Neighbor)
				c.Ctx = append(c.Ctx, CtxBits(e.SrcContext, e.DstContext))
				c.TW = append(c.TW, tw)
				sum += tw
				if tw > max {
					max = tw
				}
			}
			c.Offsets[i+1] = int64(len(c.Nbr))
			c.TWSum[i] = sum
			c.TWMax[i] = max
		}
		n.csr = c
	})
	return n.csr
}

// NumNodes returns the number of persons.
func (n *Network) NumNodes() int { return len(n.Persons) }

// NumEdges returns the number of undirected edges (half-edge count / 2).
func (n *Network) NumEdges() int {
	total := 0
	for _, a := range n.Adj {
		total += len(a)
	}
	return total / 2
}

// Households returns the household records.
func (n *Network) Households() []Household { return n.households }

// Degree returns the contact degree of person i.
func (n *Network) Degree(i int) int { return len(n.Adj[i]) }

// MeanDegree returns the average degree.
func (n *Network) MeanDegree() float64 {
	if len(n.Adj) == 0 {
		return 0
	}
	return float64(2*n.NumEdges()) / float64(len(n.Adj))
}

// addEdge inserts both half-edges of an undirected contact.
func (n *Network) addEdge(u, v int32, cu, cv Context, start, dur uint16, w float32) {
	n.Adj[u] = append(n.Adj[u], HalfEdge{Neighbor: v, SrcContext: cu, DstContext: cv, StartMin: start, DurationMin: dur, Weight: w})
	n.Adj[v] = append(n.Adj[v], HalfEdge{Neighbor: u, SrcContext: cv, DstContext: cu, StartMin: start, DurationMin: dur, Weight: w})
}

// Validate checks network invariants: symmetric adjacency, no self-loops,
// neighbor IDs in range, household membership consistent.
func (n *Network) Validate() error {
	nn := len(n.Persons)
	if len(n.Adj) != nn {
		return fmt.Errorf("synthpop: %d persons but %d adjacency rows", nn, len(n.Adj))
	}
	type key struct {
		a, b int32
		ca   Context
	}
	// Count half-edges per (src, dst) and verify the mirror exists.
	seen := make(map[key]int, 64)
	for i, adj := range n.Adj {
		for _, e := range adj {
			if e.Neighbor == int32(i) {
				return fmt.Errorf("synthpop: self-loop at %d", i)
			}
			if e.Neighbor < 0 || int(e.Neighbor) >= nn {
				return fmt.Errorf("synthpop: neighbor %d out of range at node %d", e.Neighbor, i)
			}
			seen[key{int32(i), e.Neighbor, e.SrcContext}]++
		}
	}
	for k, c := range seen {
		mirror := seen[key{k.b, k.a, 0}] + seen[key{k.b, k.a, 1}] + seen[key{k.b, k.a, 2}] +
			seen[key{k.b, k.a, 3}] + seen[key{k.b, k.a, 4}] + seen[key{k.b, k.a, 5}] + seen[key{k.b, k.a, 6}]
		forward := 0
		for c := Context(0); c < NumContexts; c++ {
			forward += seen[key{k.a, k.b, c}]
		}
		if mirror != forward {
			return fmt.Errorf("synthpop: asymmetric adjacency between %d and %d (%d vs %d)", k.a, k.b, forward, mirror)
		}
		_ = c
	}
	return nil
}

// Partition is a contiguous block of nodes assigned to one processing unit.
type Partition struct {
	FirstNode, LastNode int32 // inclusive range of node IDs
	HalfEdges           int   // number of half-edges owned by the block
}

// PartitionNodes splits the network's nodes into at most p contiguous
// partitions using the paper's algorithm: walk the nodes in order,
// allocating to the current partition until its incoming (half-)edge count
// exceeds E/P + ε·(E/P), where ε is the tolerance factor; all incoming
// edges of a node always land in the node's partition. The final partition
// absorbs any remainder, so fewer than p partitions may be returned for
// very skewed degree sequences.
func (n *Network) PartitionNodes(p int, epsilon float64) []Partition {
	if p <= 0 {
		p = 1
	}
	// Degrees come from the CSR offsets — the partitioner shares the flat
	// layout the simulation kernel runs on.
	csr := n.CSR()
	nn := len(n.Adj)
	totalHalf := int(csr.Offsets[nn])
	target := float64(totalHalf)/float64(p) + epsilon*float64(totalHalf)/float64(p)
	var parts []Partition
	start := 0
	count := 0
	for i := 0; i < nn; i++ {
		deg := csr.Degree(int32(i))
		count += deg
		lastPartition := len(parts) == p-1
		if float64(count) > target && !lastPartition && i > start {
			parts = append(parts, Partition{FirstNode: int32(start), LastNode: int32(i - 1), HalfEdges: count - deg})
			start = i
			count = deg
		}
	}
	if start < nn || len(parts) == 0 {
		last := nn - 1
		if last < start {
			last = start
		}
		parts = append(parts, Partition{FirstNode: int32(start), LastNode: int32(last), HalfEdges: count})
	}
	return parts
}

// PartitionNodesAligned is PartitionNodes with every partition boundary
// rounded to the nearest multiple of align. The shard-owned simulator
// requires 64-aligned ranges so that the per-node bitsets it maintains
// (infectious-neighbor bits, at-risk bits) never share a word between two
// owners — each shard then writes its bitset words without atomics. Cut
// points are rounded to the nearest aligned node; cuts that collide or
// fall outside (0, n) after rounding are dropped, so fewer than p
// partitions may be returned for small networks. HalfEdges loads are
// recomputed from the CSR offsets after rounding.
func (n *Network) PartitionNodesAligned(p int, epsilon float64, align int) []Partition {
	parts := n.PartitionNodes(p, epsilon)
	if align <= 1 || len(parts) <= 1 {
		return parts
	}
	nn := len(n.Adj)
	a := int32(align)
	cuts := make([]int32, 0, len(parts)-1)
	prev := int32(0)
	for _, part := range parts[:len(parts)-1] {
		c := part.LastNode + 1
		c = (c + a/2) / a * a // round to nearest aligned boundary
		if c <= prev {
			c = prev + a // keep cuts strictly increasing
		}
		if c >= int32(nn) {
			break
		}
		cuts = append(cuts, c)
		prev = c
	}
	csr := n.CSR()
	out := make([]Partition, 0, len(cuts)+1)
	start := int32(0)
	for _, c := range cuts {
		out = append(out, Partition{
			FirstNode: start, LastNode: c - 1,
			HalfEdges: int(csr.Offsets[c] - csr.Offsets[start]),
		})
		start = c
	}
	out = append(out, Partition{
		FirstNode: start, LastNode: int32(nn - 1),
		HalfEdges: int(csr.Offsets[nn] - csr.Offsets[start]),
	})
	return out
}

// PartitionImbalance returns max/mean half-edge load across partitions, a
// quality measure for the partitioner (1.0 is perfect balance).
func PartitionImbalance(parts []Partition) float64 {
	if len(parts) == 0 {
		return 0
	}
	total, max := 0, 0
	for _, p := range parts {
		total += p.HalfEdges
		if p.HalfEdges > max {
			max = p.HalfEdges
		}
	}
	mean := float64(total) / float64(len(parts))
	if mean == 0 {
		return 1
	}
	return float64(max) / mean
}

// ContextDegreeShare returns the fraction of half-edges per context, a
// sanity metric used by tests and by intervention sizing.
func (n *Network) ContextDegreeShare() [NumContexts]float64 {
	var counts [NumContexts]int
	total := 0
	for _, adj := range n.Adj {
		for _, e := range adj {
			counts[e.SrcContext]++
			total++
		}
	}
	var out [NumContexts]float64
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}
