package synthpop

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func marginals(table [][]float64) (rows, cols []float64) {
	rows = make([]float64, len(table))
	cols = make([]float64, len(table[0]))
	for i := range table {
		for j, v := range table[i] {
			rows[i] += v
			cols[j] += v
		}
	}
	return rows, cols
}

func TestIPFFitsMarginals(t *testing.T) {
	seed := [][]float64{
		{1, 2, 1},
		{3, 1, 2},
	}
	rowT := []float64{40, 60}
	colT := []float64{30, 50, 20}
	fit, err := IPF(seed, rowT, colT, 100, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	rows, cols := marginals(fit)
	for i := range rowT {
		if math.Abs(rows[i]-rowT[i]) > 1e-6 {
			t.Fatalf("row %d: %v want %v", i, rows[i], rowT[i])
		}
	}
	for j := range colT {
		if math.Abs(cols[j]-colT[j]) > 1e-6 {
			t.Fatalf("col %d: %v want %v", j, cols[j], colT[j])
		}
	}
}

func TestIPFPreservesStructuralZeros(t *testing.T) {
	seed := [][]float64{
		{0, 2},
		{3, 1},
	}
	fit, err := IPF(seed, []float64{10, 20}, []float64{12, 18}, 200, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if fit[0][0] != 0 {
		t.Fatalf("structural zero violated: %v", fit[0][0])
	}
	rows, _ := marginals(fit)
	if math.Abs(rows[0]-10) > 1e-6 {
		t.Fatalf("row target missed with structural zero: %v", rows[0])
	}
}

func TestIPFPreservesOddsRatios(t *testing.T) {
	// IPF preserves the seed's interaction structure: for a 2×2 table
	// the odds ratio is invariant.
	seed := [][]float64{{4, 1}, {2, 3}}
	or := (seed[0][0] * seed[1][1]) / (seed[0][1] * seed[1][0])
	fit, err := IPF(seed, []float64{50, 50}, []float64{60, 40}, 300, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	got := (fit[0][0] * fit[1][1]) / (fit[0][1] * fit[1][0])
	if math.Abs(got-or) > 1e-6*or {
		t.Fatalf("odds ratio %v want %v", got, or)
	}
}

func TestIPFValidation(t *testing.T) {
	if _, err := IPF(nil, nil, nil, 10, 0); err == nil {
		t.Error("empty seed accepted")
	}
	seed := [][]float64{{1, 1}}
	if _, err := IPF(seed, []float64{1, 2}, []float64{1, 1}, 10, 0); err == nil {
		t.Error("mismatched rows accepted")
	}
	if _, err := IPF(seed, []float64{10}, []float64{3, 3}, 10, 0); err == nil {
		t.Error("disagreeing totals accepted")
	}
	if _, err := IPF([][]float64{{-1, 1}}, []float64{1}, []float64{0.5, 0.5}, 10, 0); err == nil {
		t.Error("negative seed accepted")
	}
	if _, err := IPF([][]float64{{0, 0}, {1, 1}}, []float64{5, 5}, []float64{5, 5}, 10, 0); err == nil {
		t.Error("infeasible structural zeros accepted")
	}
}

func TestIPFQuickRandomTables(t *testing.T) {
	err := quick.Check(func(seed16 uint16) bool {
		r := stats.NewRNG(uint64(seed16) + 1)
		rows := r.Intn(4) + 2
		cols := r.Intn(4) + 2
		seed := make([][]float64, rows)
		for i := range seed {
			seed[i] = make([]float64, cols)
			for j := range seed[i] {
				seed[i][j] = 0.1 + r.Float64()
			}
		}
		rowT := make([]float64, rows)
		total := 0.0
		for i := range rowT {
			rowT[i] = 1 + 10*r.Float64()
			total += rowT[i]
		}
		colT := make([]float64, cols)
		rem := total
		for j := 0; j < cols-1; j++ {
			colT[j] = rem * r.Float64() / 2
			rem -= colT[j]
		}
		colT[cols-1] = rem
		fit, err := IPF(seed, rowT, colT, 500, 1e-10)
		if err != nil {
			return false
		}
		gotR, gotC := marginals(fit)
		for i := range rowT {
			if math.Abs(gotR[i]-rowT[i]) > 1e-4*(1+rowT[i]) {
				return false
			}
		}
		for j := range colT {
			if math.Abs(gotC[j]-colT[j]) > 1e-4*(1+colT[j]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFitJointAgeHousehold(t *testing.T) {
	joint, err := FitJointAgeHousehold()
	if err != nil {
		t.Fatal(err)
	}
	// Structural zeros hold: no children alone.
	if joint[0][0] != 0 || joint[1][0] != 0 {
		t.Fatal("children assigned to single-person households")
	}
	// Marginals match the pyramid.
	rows, _ := marginals(joint)
	for i := range rows {
		if math.Abs(rows[i]-agePyramid.probs[i]) > 1e-6 {
			t.Fatalf("age band %d marginal %v want %v", i, rows[i], agePyramid.probs[i])
		}
	}
	// Total is 1.
	total := 0.0
	for i := range joint {
		for _, v := range joint[i] {
			if v < 0 {
				t.Fatal("negative cell")
			}
			total += v
		}
	}
	if math.Abs(total-1) > 1e-6 {
		t.Fatalf("joint sums to %v", total)
	}
}
