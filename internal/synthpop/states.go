// Package synthpop generates the synthetic populations and social contact
// networks the simulations run on. It stands in for the US-scale population
// pipeline of the paper's Appendix C (PUMS/IPF base population, activity
// assignment, location assignment, co-occupancy contact network): the
// statistical generator here produces the same artefacts — persons with
// traits, households, context-labelled contact edges, per-state networks —
// at a configurable fraction of real scale (DESIGN.md, substitutions).
package synthpop

import "fmt"

// StateInfo describes one of the 51 regions (50 states + DC).
type StateInfo struct {
	Code       string // postal code, e.g. "VA"
	Name       string
	FIPS       int // state FIPS code
	Population int // 2019 resident population estimate
	Counties   int // number of counties (or equivalents)
}

// States lists the 51 regions in postal-code order. Populations are 2019
// Census estimates (the vintage the paper's networks were built from);
// county counts sum to ~3140, matching the paper's "3140 counties".
var States = []StateInfo{
	{"AK", "Alaska", 2, 731545, 29},
	{"AL", "Alabama", 1, 4903185, 67},
	{"AR", "Arkansas", 5, 3017804, 75},
	{"AZ", "Arizona", 4, 7278717, 15},
	{"CA", "California", 6, 39512223, 58},
	{"CO", "Colorado", 8, 5758736, 64},
	{"CT", "Connecticut", 9, 3565287, 8},
	{"DC", "District of Columbia", 11, 705749, 1},
	{"DE", "Delaware", 10, 973764, 3},
	{"FL", "Florida", 12, 21477737, 67},
	{"GA", "Georgia", 13, 10617423, 159},
	{"HI", "Hawaii", 15, 1415872, 5},
	{"IA", "Iowa", 19, 3155070, 99},
	{"ID", "Idaho", 16, 1787065, 44},
	{"IL", "Illinois", 17, 12671821, 102},
	{"IN", "Indiana", 18, 6732219, 92},
	{"KS", "Kansas", 20, 2913314, 105},
	{"KY", "Kentucky", 21, 4467673, 120},
	{"LA", "Louisiana", 22, 4648794, 64},
	{"MA", "Massachusetts", 25, 6892503, 14},
	{"MD", "Maryland", 24, 6045680, 24},
	{"ME", "Maine", 23, 1344212, 16},
	{"MI", "Michigan", 26, 9986857, 83},
	{"MN", "Minnesota", 27, 5639632, 87},
	{"MO", "Missouri", 29, 6137428, 115},
	{"MS", "Mississippi", 28, 2976149, 82},
	{"MT", "Montana", 30, 1068778, 56},
	{"NC", "North Carolina", 37, 10488084, 100},
	{"ND", "North Dakota", 38, 762062, 53},
	{"NE", "Nebraska", 31, 1934408, 93},
	{"NH", "New Hampshire", 33, 1359711, 10},
	{"NJ", "New Jersey", 34, 8882190, 21},
	{"NM", "New Mexico", 35, 2096829, 33},
	{"NV", "Nevada", 32, 3080156, 17},
	{"NY", "New York", 36, 19453561, 62},
	{"OH", "Ohio", 39, 11689100, 88},
	{"OK", "Oklahoma", 40, 3956971, 77},
	{"OR", "Oregon", 41, 4217737, 36},
	{"PA", "Pennsylvania", 42, 12801989, 67},
	{"RI", "Rhode Island", 44, 1059361, 5},
	{"SC", "South Carolina", 45, 5148714, 46},
	{"SD", "South Dakota", 46, 884659, 66},
	{"TN", "Tennessee", 47, 6829174, 95},
	{"TX", "Texas", 48, 28995881, 254},
	{"UT", "Utah", 49, 3205958, 29},
	{"VA", "Virginia", 51, 8535519, 133},
	{"VT", "Vermont", 50, 623989, 14},
	{"WA", "Washington", 53, 7614893, 39},
	{"WI", "Wisconsin", 55, 5822434, 72},
	{"WV", "West Virginia", 54, 1792147, 55},
	{"WY", "Wyoming", 56, 578759, 23},
}

// StateByCode returns the StateInfo for a postal code.
func StateByCode(code string) (StateInfo, error) {
	for _, s := range States {
		if s.Code == code {
			return s, nil
		}
	}
	return StateInfo{}, fmt.Errorf("synthpop: unknown state %q", code)
}

// USPopulation returns the summed population of all 51 regions.
func USPopulation() int {
	total := 0
	for _, s := range States {
		total += s.Population
	}
	return total
}

// TotalCounties returns the summed county count of all 51 regions.
func TotalCounties() int {
	total := 0
	for _, s := range States {
		total += s.Counties
	}
	return total
}

// CountyFIPS builds a synthetic 5-digit county FIPS code from a state FIPS
// and a county index (1-based odd numbering like real FIPS codes).
func CountyFIPS(stateFIPS, countyIndex int) int {
	return stateFIPS*1000 + countyIndex*2 + 1
}

// StateOfCountyFIPS recovers the state FIPS from a county FIPS.
func StateOfCountyFIPS(countyFIPS int) int { return countyFIPS / 1000 }
