package synthpop

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// This file implements the location model of Appendix C: a set of
// spatially-embedded locations L (residences plus activity locations), the
// assignment of each person's activities to locations, the bipartite
// people–location graph G_PL, and the derivation of the contact network
// from co-occupancy with sub-location mixing ("merely being present at a
// location at the same time does not imply a contact").

// LocationType mirrors the activity types of the population model.
type LocationType uint8

// Location types.
const (
	LocResidence LocationType = iota
	LocWork
	LocSchool
	LocCollege
	LocShopping
	LocReligion
	LocOther
	NumLocationTypes
)

var locationTypeNames = [NumLocationTypes]string{
	"residence", "work", "school", "college", "shopping", "religion", "other",
}

// String returns the location type's display name.
func (lt LocationType) String() string {
	if int(lt) < len(locationTypeNames) {
		return locationTypeNames[lt]
	}
	return fmt.Sprintf("LocationType(%d)", uint8(lt))
}

// contextFor maps a location type to the contact context it generates.
func (lt LocationType) contextFor() Context {
	switch lt {
	case LocResidence:
		return CtxHome
	case LocWork:
		return CtxWork
	case LocSchool:
		return CtxSchool
	case LocCollege:
		return CtxCollege
	case LocShopping:
		return CtxShopping
	case LocReligion:
		return CtxReligion
	default:
		return CtxOther
	}
}

// Location is one spatially-embedded place.
type Location struct {
	ID         int32
	Type       LocationType
	CountyFIPS int32
	Lat, Lon   float32
}

// Visit is one edge of the bipartite people–location graph G_PL: person p
// visits location l with the given daily start time and duration.
type Visit struct {
	Person   int32
	Location int32
	StartMin uint16
	DurMin   uint16
}

// LocationModel is the output of the location-assignment stage.
type LocationModel struct {
	Locations []Location
	Visits    []Visit
}

// VisitorsOf returns the visits grouped by location.
func (lm *LocationModel) VisitorsOf() map[int32][]Visit {
	out := make(map[int32][]Visit)
	for _, v := range lm.Visits {
		out[v.Location] = append(out[v.Location], v)
	}
	return out
}

// GenerateWithLocations builds the population through the full Appendix C
// staging: (i) persons and households (the IPF-fitted base population),
// (ii) activity assignment, (iii) location assignment, (iv) contact
// derivation from co-occupancy with sub-location mixing. The returned
// Network is interchangeable with Generate's output; the LocationModel
// exposes the intermediate artefacts.
func GenerateWithLocations(st StateInfo, cfg Config) (*Network, *LocationModel, error) {
	cfg = cfg.withDefaults()
	// Stage (i): reuse the base generator for persons/households/home
	// contacts, then strip its non-home edges and rebuild them through
	// explicit locations.
	base, err := Generate(st, cfg)
	if err != nil {
		return nil, nil, err
	}
	net := &Network{Region: base.Region, Persons: base.Persons, households: base.households}
	net.Adj = make([][]HalfEdge, len(net.Persons))
	for _, hh := range net.households {
		for i := 0; i < len(hh.Members); i++ {
			for j := i + 1; j < len(hh.Members); j++ {
				net.addEdge(hh.Members[i], hh.Members[j], CtxHome, CtxHome, 18*60, 600, 1)
			}
		}
	}

	r := stats.NewRNG(cfg.Seed*7778777 + uint64(st.FIPS))
	lm := &LocationModel{}

	// Residences: one location per household.
	residenceOf := make(map[int32]int32, len(net.households))
	for _, hh := range net.households {
		id := int32(len(lm.Locations))
		lm.Locations = append(lm.Locations, Location{
			ID: id, Type: LocResidence, CountyFIPS: hh.CountyFIPS, Lat: hh.Lat, Lon: hh.Lon,
		})
		residenceOf[hh.ID] = id
	}

	// Activity locations per county, sized so assignment produces the
	// same group sizes as the base generator.
	byCounty := map[int32][]int32{}
	for i := range net.Persons {
		byCounty[net.Persons[i].CountyFIPS] = append(byCounty[net.Persons[i].CountyFIPS], net.Persons[i].ID)
	}
	newLoc := func(t LocationType, county int32) int32 {
		id := int32(len(lm.Locations))
		lm.Locations = append(lm.Locations, Location{
			ID: id, Type: t, CountyFIPS: county,
			Lat: 30 + float32(r.Norm())*0.3, Lon: -95 + float32(r.Norm())*0.3,
		})
		return id
	}

	// Stage (ii)+(iii): assign activities to locations.
	type assignment struct {
		loc      int32
		start    uint16
		dur      uint16
		ctx      Context
		contacts int
	}
	perPerson := make([][]assignment, len(net.Persons))
	// Home visits for everyone.
	for i := range net.Persons {
		p := &net.Persons[i]
		lm.Visits = append(lm.Visits, Visit{
			Person: p.ID, Location: residenceOf[p.HouseholdID], StartMin: 18 * 60, DurMin: 600,
		})
	}
	assignGroups := func(members []int32, lt LocationType, groupSize, contacts int, start, dur uint16) {
		var loc int32 = -1
		inLoc := 0
		for _, pid := range members {
			if loc < 0 || inLoc >= groupSize {
				loc = newLoc(lt, net.Persons[pid].CountyFIPS)
				inLoc = 0
			}
			inLoc++
			lm.Visits = append(lm.Visits, Visit{Person: pid, Location: loc, StartMin: start, DurMin: dur})
			perPerson[pid] = append(perPerson[pid], assignment{
				loc: loc, start: start, dur: dur, ctx: lt.contextFor(), contacts: contacts,
			})
		}
	}
	// Work (statewide shuffle → commuting), school (per county), college
	// (statewide), religion (per county), shopping & other (per county).
	var workers []int32
	for i := range net.Persons {
		p := &net.Persons[i]
		if p.Age >= 18 && p.Age <= 64 && r.Bool(cfg.EmploymentRate) {
			workers = append(workers, p.ID)
		}
	}
	r.Shuffle(len(workers), func(i, j int) { workers[i], workers[j] = workers[j], workers[i] })
	assignGroups(workers, LocWork, 12, cfg.WorkContacts, 9*60, 480)
	var collegians []int32
	for i := range net.Persons {
		p := &net.Persons[i]
		if p.Age >= 18 && p.Age <= 22 && r.Bool(cfg.CollegeRate) {
			collegians = append(collegians, p.ID)
		}
	}
	assignGroups(collegians, LocCollege, 30, cfg.CollegeContacts, 10*60, 240)
	for _, members := range byCounty {
		var students, attendees, shoppers []int32
		for _, pid := range members {
			a := net.Persons[pid].Age
			if a >= 5 && a <= 17 {
				students = append(students, pid)
			}
			if r.Bool(cfg.ReligionRate) {
				attendees = append(attendees, pid)
			}
			shoppers = append(shoppers, pid)
		}
		assignGroups(students, LocSchool, 20, cfg.SchoolContacts, 8*60, 360)
		assignGroups(attendees, LocReligion, 30, cfg.ReligionContacts, 10*60, 120)
		// Shopping and other: larger venues with fewer contacts each.
		assignGroups(shoppers, LocShopping, 60, cfg.ShoppingContacts, 11*60, 30)
		assignGroups(shoppers, LocOther, 40, cfg.OtherContacts, 14*60, 60)
	}

	// Stage (iv): derive contacts by co-occupancy with sub-location
	// mixing — within each location, each visitor contacts k random
	// co-visitors (a clique for tiny locations).
	visitors := map[int32][]int32{}
	meta := map[int32]assignment{}
	for pid, as := range perPerson {
		for _, a := range as {
			visitors[a.loc] = append(visitors[a.loc], int32(pid))
			meta[a.loc] = a
		}
	}
	// Iterate locations in ID order for determinism.
	for locID := int32(0); locID < int32(len(lm.Locations)); locID++ {
		group := visitors[locID]
		if len(group) < 2 {
			continue
		}
		a := meta[locID]
		groupContacts(net, r, group, len(group), a.ctx, a.ctx, a.contacts, a.start, a.dur)
	}
	return net, lm, nil
}

// LocationStats summarizes a location model for reporting and tests.
type LocationStats struct {
	ByType     [NumLocationTypes]int
	MeanVisits float64
}

// Stats computes summary statistics.
func (lm *LocationModel) Stats() LocationStats {
	var out LocationStats
	for _, l := range lm.Locations {
		out.ByType[l.Type]++
	}
	if len(lm.Locations) > 0 {
		out.MeanVisits = float64(len(lm.Visits)) / float64(len(lm.Locations))
	}
	return out
}

// Distance returns the great-circle distance in kilometres between two
// locations (haversine).
func Distance(a, b Location) float64 {
	const earthRadiusKm = 6371
	lat1 := float64(a.Lat) * math.Pi / 180
	lat2 := float64(b.Lat) * math.Pi / 180
	dLat := lat2 - lat1
	dLon := (float64(b.Lon) - float64(a.Lon)) * math.Pi / 180
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}
