package synthpop

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// The paper supplies both the person traits and the contact network of each
// population as CSV files; this file implements those interchange formats
// so that populations can be generated once, written to disk, and re-read
// by simulation jobs — the same staging pattern the production workflow
// uses (2TB one-time network transfer, Table II).

// WritePersonsCSV writes the person table in the paper's trait schema:
// pid, hid, age, age_group, gender, county_fips, home_lat, home_lon.
func WritePersonsCSV(w io.Writer, net *Network) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"pid", "hid", "age", "age_group", "gender", "county_fips", "home_lat", "home_lon"}); err != nil {
		return err
	}
	for i := range net.Persons {
		p := &net.Persons[i]
		rec := []string{
			strconv.Itoa(int(p.ID)),
			strconv.Itoa(int(p.HouseholdID)),
			strconv.Itoa(int(p.Age)),
			p.AgeGroup().String(),
			strconv.Itoa(int(p.Gender)),
			strconv.Itoa(int(p.CountyFIPS)),
			strconv.FormatFloat(float64(p.HomeLat), 'f', 4, 32),
			strconv.FormatFloat(float64(p.HomeLon), 'f', 4, 32),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadPersonsCSV parses a person table written by WritePersonsCSV.
func ReadPersonsCSV(r io.Reader) ([]Person, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("synthpop: reading person header: %w", err)
	}
	if len(header) < 8 || header[0] != "pid" {
		return nil, fmt.Errorf("synthpop: unexpected person header %v", header)
	}
	var out []Person
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		pid, err1 := strconv.Atoi(rec[0])
		hid, err2 := strconv.Atoi(rec[1])
		age, err3 := strconv.Atoi(rec[2])
		gender, err4 := strconv.Atoi(rec[4])
		fips, err5 := strconv.Atoi(rec[5])
		lat, err6 := strconv.ParseFloat(rec[6], 32)
		lon, err7 := strconv.ParseFloat(rec[7], 32)
		for _, e := range []error{err1, err2, err3, err4, err5, err6, err7} {
			if e != nil {
				return nil, fmt.Errorf("synthpop: bad person record %v: %w", rec, e)
			}
		}
		out = append(out, Person{
			ID: int32(pid), HouseholdID: int32(hid), Age: uint8(age),
			Gender: Gender(gender), CountyFIPS: int32(fips),
			HomeLat: float32(lat), HomeLon: float32(lon),
		})
	}
	return out, nil
}

// WriteNetworkCSV writes the contact edges in the paper's schema: each
// undirected edge once as source pid, target pid, source activity, target
// activity, start time, duration, weight. The edge is emitted from the
// endpoint with the smaller ID.
func WriteNetworkCSV(w io.Writer, net *Network) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "source_pid,target_pid,source_activity,target_activity,start_min,duration_min,weight"); err != nil {
		return err
	}
	for i, adj := range net.Adj {
		for _, e := range adj {
			if e.Neighbor < int32(i) {
				continue // emit each undirected edge once
			}
			if _, err := fmt.Fprintf(bw, "%d,%d,%s,%s,%d,%d,%g\n",
				i, e.Neighbor, e.SrcContext, e.DstContext, e.StartMin, e.DurationMin, e.Weight); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadNetworkCSV parses a network written by WriteNetworkCSV into the given
// set of persons, rebuilding the dual half-edge representation.
func ReadNetworkCSV(r io.Reader, persons []Person, region string) (*Network, error) {
	net := &Network{Region: region, Persons: persons, Adj: make([][]HalfEdge, len(persons))}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("synthpop: empty network file")
	}
	line := 1
	for sc.Scan() {
		line++
		rec := splitCSVLine(sc.Text(), 7)
		if rec == nil {
			return nil, fmt.Errorf("synthpop: line %d: malformed edge record", line)
		}
		u, err1 := strconv.Atoi(rec[0])
		v, err2 := strconv.Atoi(rec[1])
		cs, err3 := ParseContext(rec[2])
		cd, err4 := ParseContext(rec[3])
		start, err5 := strconv.Atoi(rec[4])
		dur, err6 := strconv.Atoi(rec[5])
		wt, err7 := strconv.ParseFloat(rec[6], 32)
		for _, e := range []error{err1, err2, err3, err4, err5, err6, err7} {
			if e != nil {
				return nil, fmt.Errorf("synthpop: line %d: %w", line, e)
			}
		}
		if u < 0 || u >= len(persons) || v < 0 || v >= len(persons) {
			return nil, fmt.Errorf("synthpop: line %d: endpoint out of range", line)
		}
		net.addEdge(int32(u), int32(v), cs, cd, uint16(start), uint16(dur), float32(wt))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return net, nil
}

// splitCSVLine splits a simple comma-separated line into exactly n fields
// without allocation-heavy csv.Reader machinery (edge files are large).
func splitCSVLine(s string, n int) []string {
	out := make([]string, 0, n)
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == ',' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	out = append(out, s[start:])
	if len(out) != n {
		return nil
	}
	return out
}

// PersonBytes estimates the serialized size of the person table, used for
// the data-transfer accounting of Tables I and II.
func (n *Network) PersonBytes() int64 {
	return int64(len(n.Persons)) * 48 // ~48 bytes per CSV row
}

// EdgeBytes estimates the serialized size of the network file.
func (n *Network) EdgeBytes() int64 {
	return int64(n.NumEdges()) * 44 // ~44 bytes per CSV row
}
