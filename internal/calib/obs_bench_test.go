package calib

import (
	"context"
	"testing"
	"time"

	obspkg "repro/internal/obs"
)

// benchSampleCtx runs the multi-chain sampler with the given context so the
// ObsOn/ObsOff pair prices the tracing overhead on the calibration stack
// (the logLik-dominated hot loop; budget ≤3%).
func benchSampleCtx(b *testing.B, ctx context.Context) {
	c := benchCalibrator(b)
	cfg := Config{Steps: 300, BurnIn: 150, Seed: 9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post, err := c.SampleCtx(ctx, cfg, 100)
		if err != nil {
			b.Fatal(err)
		}
		sink = post.AcceptRate
	}
}

func BenchmarkSampleObsOff(b *testing.B) {
	benchSampleCtx(b, context.Background())
}

type discardSink struct{}

func (discardSink) Emit(obspkg.Entry) {}

func BenchmarkSampleObsOn(b *testing.B) {
	tr := obspkg.NewTracer(discardSink{},
		obspkg.WithClock(obspkg.FixedClock(time.Unix(0, 0), time.Microsecond)),
		obspkg.WithSpanMetrics(obspkg.NewRegistry()))
	benchSampleCtx(b, obspkg.WithTracer(context.Background(), tr))
}
