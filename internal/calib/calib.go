// Package calib implements the paper's Bayesian model-calibration
// framework for the agent-based simulator (Appendix E, "Agent-Based Model
// Calibration"), the role GPMSA plays in the production workflow:
//
//	y = η(θ) + δ + ε
//
// with η emulated by a basis-represented Gaussian process (package gp),
// δ a systematic discrepancy expanded over 1-d normal kernels with an sd
// of 15 days spaced 10 days apart (eq. 5), and ε observation noise. The
// posterior over θ (and the δ/ε scale hyperparameters, which carry gamma
// priors) is explored by multiple over-dispersed Metropolis chains run in
// parallel, pooled after burn-in and diagnosed with split-R̂ and ESS; the
// likelihood exploits Σ = D + σδ²VVᵀ via the Woodbury identity so each
// MCMC step costs O(T·pδ²) instead of a dense T×T Cholesky. The output is
// a set of plausible configurations that the prediction workflow then
// re-simulates.
package calib

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/gp"
	"repro/internal/lhs"
	"repro/internal/linalg"
	"repro/internal/mcmc"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Design couples parameter settings with the simulated outputs at those
// settings: the "cells" of a calibration workflow.
type Design struct {
	// Ranges give the natural bounds of each calibration parameter
	// (e.g. TAU ∈ [0.1, 0.3], SYMP ∈ [0.4, 0.8]).
	Ranges []lhs.Range
	// Thetas is the n × d design in natural units.
	Thetas [][]float64
	// Outputs is the n × T matrix of simulated time series (the paper
	// calibrates on logged cumulative confirmed counts).
	Outputs *linalg.Matrix
}

// NewLHSDesign draws an n-point Latin hypercube prior design (the VA case
// study uses n = 100).
func NewLHSDesign(r *stats.RNG, n int, ranges []lhs.Range) (*Design, error) {
	thetas, err := lhs.Sample(r, n, ranges)
	if err != nil {
		return nil, err
	}
	return &Design{Ranges: ranges, Thetas: thetas}, nil
}

// DiscrepancyBasis builds the T × pδ kernel matrix of eq. (5): normal
// bumps with the given sd, spaced every `spacing` days across the horizon.
// The paper uses sd = 15 and spacing = 10 (pδ = 7 for its horizon).
func DiscrepancyBasis(T int, sd, spacing float64) *linalg.Matrix {
	if spacing <= 0 {
		spacing = 10
	}
	if sd <= 0 {
		sd = 15
	}
	p := int(math.Ceil(float64(T)/spacing)) + 1
	m := linalg.NewMatrix(T, p)
	for j := 0; j < p; j++ {
		center := float64(j) * spacing
		for t := 0; t < T; t++ {
			z := (float64(t) - center) / sd
			m.Set(t, j, math.Exp(-0.5*z*z))
		}
	}
	return m
}

// Calibrator holds the fitted emulator and observation model.
type Calibrator struct {
	Design *Design
	Em     *gp.MultiGP
	Scaler *gp.Scaler
	Obs    []float64
	VBasis *linalg.Matrix // discrepancy kernels, T × pδ
}

// Config controls Fit and Posterior sampling.
type Config struct {
	NumBasis int // pη; the paper uses 5
	// Discrepancy kernel shape (defaults: sd 15 days, spacing 10 days).
	DiscrepancySD, DiscrepancySpacing float64

	// MCMC controls. Steps and BurnIn are per chain; Chains over-dispersed
	// chains (default 4) run concurrently, capped at Parallelism workers.
	// The pooled posterior is bit-identical for a fixed Seed at any
	// Parallelism.
	Steps, BurnIn int
	Seed          uint64
	Chains        int
	Parallelism   int

	// RHatMax, when > 0, gates convergence: Sample still returns the
	// posterior (with diagnostics filled in) but pairs it with a
	// *mcmc.ConvergenceError when any coordinate's split-R̂ exceeds the
	// gate. MinESS (> 0) additionally requires that much pooled effective
	// sample size per coordinate.
	RHatMax float64
	MinESS  float64

	// DenseLik forces the O(T³) dense-Cholesky likelihood instead of the
	// Woodbury fast path — the verification/benchmark reference.
	DenseLik bool

	// Hyperparameter bounds: the discrepancy scale σδ and noise scale σε
	// are sampled alongside θ with gamma(2, 2/scale₀) priors. Defaults
	// are derived from the observation scale.
	SigmaDeltaMax, SigmaEpsMax float64
}

// Fit builds the emulator from the design and attaches the observation.
// Outputs must already be filled in (one simulated series per design row).
func Fit(d *Design, obs []float64, cfg Config) (*Calibrator, error) {
	if d.Outputs == nil || d.Outputs.Rows != len(d.Thetas) {
		return nil, fmt.Errorf("calib: design outputs missing or mismatched")
	}
	if len(obs) != d.Outputs.Cols {
		return nil, fmt.Errorf("calib: observation length %d vs output horizon %d", len(obs), d.Outputs.Cols)
	}
	lo := make([]float64, len(d.Ranges))
	hi := make([]float64, len(d.Ranges))
	for k, rg := range d.Ranges {
		lo[k], hi[k] = rg.Lo, rg.Hi
	}
	scaler, err := gp.NewScaler(lo, hi)
	if err != nil {
		return nil, err
	}
	unit := make([][]float64, len(d.Thetas))
	for i, th := range d.Thetas {
		unit[i] = scaler.ToUnit(th)
	}
	nb := cfg.NumBasis
	if nb <= 0 {
		nb = 5
	}
	em, err := gp.FitMulti(unit, d.Outputs, nb)
	if err != nil {
		return nil, fmt.Errorf("calib: emulator: %w", err)
	}
	vb := DiscrepancyBasis(d.Outputs.Cols, cfg.DiscrepancySD, cfg.DiscrepancySpacing)
	return &Calibrator{Design: d, Em: em, Scaler: scaler, Obs: obs, VBasis: vb}, nil
}

// likScratch holds one MCMC chain's likelihood working set: emulator
// prediction buffers and the small Woodbury system. Chains evaluating the
// likelihood concurrently each own a scratch, so the shared Calibrator
// stays read-only.
type likScratch struct {
	buf            *gp.MultiBuf
	mean, variance []float64      // T
	r              []float64      // T: residual y − η̂(θ)
	dinv           []float64      // T: 1/D_ii
	u, z           []float64      // p: Vᵀ D⁻¹ r and B⁻¹-solve scratch
	small, smallL  *linalg.Matrix // p × p: B = I + σδ² Vᵀ D⁻¹ V and its factor
}

func (c *Calibrator) newScratch() *likScratch {
	T := len(c.Obs)
	p := c.VBasis.Cols
	return &likScratch{
		buf:  c.Em.NewBuf(),
		mean: make([]float64, T), variance: make([]float64, T),
		r: make([]float64, T), dinv: make([]float64, T),
		u: make([]float64, p), z: make([]float64, p),
		small: linalg.NewMatrix(p, p), smallL: linalg.NewMatrix(p, p),
	}
}

// logLik evaluates the marginal log likelihood of the observation at a
// unit-cube θ with discrepancy scale sdDelta and noise scale sdEps: the
// residual r = y − η̂(θ) has covariance
//
//	Σ = diag(emulator variance) + σδ² V Vᵀ + σε² I  =  D + σδ² V Vᵀ,
//
// which marginalizes both the emulator uncertainty and the kernel-expanded
// discrepancy of eq. (5). Because D is diagonal and V is T × pδ with small
// pδ, Woodbury and the matrix-determinant lemma reduce the per-step cost
// from the O(T³) dense Cholesky to O(T·pδ²):
//
//	Σ⁻¹ = D⁻¹ − σδ² D⁻¹ V B⁻¹ Vᵀ D⁻¹,  log|Σ| = log|D| + log|B|,
//	B   = I + σδ² Vᵀ D⁻¹ V  (pδ × pδ).
//
// If the small system is ill-conditioned the dense path is the fallback.
func (c *Calibrator) logLik(thetaUnit []float64, sdDelta, sdEps float64, s *likScratch) float64 {
	c.Em.PredictInto(thetaUnit, s.mean, s.variance, s.buf)
	T := len(c.Obs)
	p := c.VBasis.Cols
	vd2 := sdDelta * sdDelta

	logDetD := 0.0
	quadD := 0.0
	for i := 0; i < T; i++ {
		d := s.variance[i] + sdEps*sdEps + 1e-9
		s.dinv[i] = 1 / d
		logDetD += math.Log(d)
		ri := c.Obs[i] - s.mean[i]
		s.r[i] = ri
		quadD += ri * ri * s.dinv[i]
	}

	// B = I + σδ² Vᵀ D⁻¹ V and u = Vᵀ D⁻¹ r, both O(T·p²).
	for j := 0; j < p; j++ {
		s.u[j] = 0
		for k := j; k < p; k++ {
			s.small.Set(j, k, 0)
		}
	}
	for i := 0; i < T; i++ {
		di := s.dinv[i]
		row := c.VBasis.Data[i*p : (i+1)*p]
		for j := 0; j < p; j++ {
			vij := row[j] * di
			s.u[j] += vij * s.r[i]
			scaled := vij * vd2
			for k := j; k < p; k++ {
				s.small.Add(j, k, scaled*row[k])
			}
		}
	}
	for j := 0; j < p; j++ {
		s.small.Add(j, j, 1)
		for k := j + 1; k < p; k++ {
			s.small.Set(k, j, s.small.At(j, k))
		}
	}

	if err := linalg.CholeskyInto(s.small, s.smallL); err != nil {
		return c.logLikDense(sdDelta, sdEps, s)
	}
	linalg.ForwardSolveInto(s.smallL, s.u, s.z)
	linalg.BackSolveTInto(s.smallL, s.z, s.z)
	quad := quadD - vd2*linalg.Dot(s.u, s.z)
	return -0.5*quad - 0.5*(logDetD+linalg.LogDetCholesky(s.smallL))
}

// logLikDense is the reference O(T³) evaluation of the same marginal
// likelihood: it materializes Σ and Cholesky-factors it. It is the fallback
// when the Woodbury small system is ill-conditioned, the verification
// oracle for the property tests, and the benchmark baseline. The caller
// must have filled s.mean/s.variance/s.r (logLik does; standalone callers
// run PredictInto first).
func (c *Calibrator) logLikDense(sdDelta, sdEps float64, s *likScratch) float64 {
	T := len(c.Obs)
	sigma := linalg.NewMatrix(T, T)
	for i := 0; i < T; i++ {
		sigma.Set(i, i, s.variance[i]+sdEps*sdEps+1e-9)
	}
	vd2 := sdDelta * sdDelta
	if vd2 > 0 {
		p := c.VBasis.Cols
		for i := 0; i < T; i++ {
			for j := i; j < T; j++ {
				sum := 0.0
				for k := 0; k < p; k++ {
					sum += c.VBasis.At(i, k) * c.VBasis.At(j, k)
				}
				sum *= vd2
				sigma.Add(i, j, sum)
				if j != i {
					sigma.Add(j, i, sum)
				}
			}
		}
	}
	l, err := linalg.Cholesky(sigma)
	if err != nil {
		return math.Inf(-1)
	}
	alpha := linalg.SolveCholesky(l, s.r)
	return -0.5*linalg.Dot(s.r, alpha) - 0.5*linalg.LogDetCholesky(l)
}

// Posterior holds the calibration output: plausible configurations in
// natural units, the sampled hyperparameters, and the multi-chain
// convergence diagnostics.
type Posterior struct {
	Thetas     [][]float64 // natural units
	SigmaDelta []float64
	SigmaEps   []float64
	AcceptRate float64
	MAPTheta   []float64
	MAPLogPost float64

	// Chains is the number of pooled chains; RHat/ESS are the split-R̂
	// and pooled effective sample size of each sampled coordinate
	// ([θ_unit (d), σδ, σε]); Converged reports the gate outcome (against
	// Config.RHatMax/MinESS, or mcmc.DefaultRHatMax advisory otherwise).
	Chains    int
	RHat      []float64
	ESS       []float64
	Converged bool
}

// Sample runs the multi-chain MCMC and returns `count` posterior
// configurations thinned from the pooled chains (the VA case study
// generates 100 posterior configurations). When a convergence gate is
// configured (Config.RHatMax or MinESS) and fails, the posterior is still
// returned — diagnostics filled in — together with the
// *mcmc.ConvergenceError describing the failure.
func (c *Calibrator) Sample(cfg Config, count int) (*Posterior, error) {
	return c.SampleCtx(context.Background(), cfg, count)
}

// SampleCtx is Sample under a "calibrate" span, with the multi-chain run
// traced through mcmc.RunChainsCtx (per-chain spans plus the
// "calibration.gate" event). Sampling itself is untouched by tracing, so
// the posterior is bit-identical with or without a tracer on ctx.
func (c *Calibrator) SampleCtx(ctx context.Context, cfg Config, count int) (*Posterior, error) {
	ctx, sp := obs.StartSpan(ctx, "calibrate")
	defer sp.End()
	d := len(c.Design.Ranges)
	obsScale := stats.StdDev(c.Obs)
	if obsScale == 0 {
		obsScale = 1
	}
	sdDeltaMax := cfg.SigmaDeltaMax
	if sdDeltaMax <= 0 {
		sdDeltaMax = obsScale
	}
	sdEpsMax := cfg.SigmaEpsMax
	if sdEpsMax <= 0 {
		sdEpsMax = obsScale
	}
	steps := cfg.Steps
	if steps <= 0 {
		steps = 2000
	}
	burn := cfg.BurnIn
	if burn <= 0 {
		burn = steps / 2
	}

	// Parameter vector: [θ_unit (d), σδ, σε].
	lo := make([]float64, d+2)
	hi := make([]float64, d+2)
	init := make([]float64, d+2)
	for k := 0; k < d; k++ {
		lo[k], hi[k] = 0, 1
		init[k] = 0.5
	}
	lo[d], hi[d], init[d] = 1e-6, sdDeltaMax, sdDeltaMax/10
	lo[d+1], hi[d+1], init[d+1] = 1e-6, sdEpsMax, sdEpsMax/10

	// Gamma(2, rate) priors on the scales keep them away from zero and
	// from the box edge (the paper gives precisions gamma priors).
	gammaLogPrior := func(x, scale float64) float64 {
		rate := 2.0 / scale
		return math.Log(rate) + math.Log(rate*x) - rate*x // shape-2 gamma, up to constants
	}
	// One likelihood scratch per chain: the Calibrator itself stays
	// read-only, so chains share the fitted emulator without locks.
	newTarget := func(int) mcmc.LogTarget {
		s := c.newScratch()
		return func(p []float64) float64 {
			theta := p[:d]
			sdDelta, sdEps := p[d], p[d+1]
			var ll float64
			if cfg.DenseLik {
				c.Em.PredictInto(theta, s.mean, s.variance, s.buf)
				for i := range s.r {
					s.r[i] = c.Obs[i] - s.mean[i]
				}
				ll = c.logLikDense(sdDelta, sdEps, s)
			} else {
				ll = c.logLik(theta, sdDelta, sdEps, s)
			}
			return ll + gammaLogPrior(sdDelta, sdDeltaMax/4) + gammaLogPrior(sdEps, sdEpsMax/4)
		}
	}
	res, runErr := mcmc.RunChainsCtx(ctx, newTarget, mcmc.MultiConfig{
		Config: mcmc.Config{
			Init: init, Lo: lo, Hi: hi,
			Steps: steps, BurnIn: burn, Thin: 1,
			StepFrac: 0.06, Seed: cfg.Seed,
		},
		Chains: cfg.Chains, Parallelism: cfg.Parallelism,
		RHatMax: cfg.RHatMax, MinESS: cfg.MinESS,
	})
	if res == nil {
		return nil, runErr
	}
	var convErr *mcmc.ConvergenceError
	if runErr != nil && !errors.As(runErr, &convErr) {
		return nil, runErr
	}
	if count <= 0 {
		count = 100
	}
	post := &Posterior{
		AcceptRate: res.AcceptRate, MAPLogPost: res.BestLogP,
		Chains: len(res.Chains), RHat: res.RHat, ESS: res.ESS,
		Converged: res.Converged,
	}
	post.MAPTheta = c.Scaler.FromUnit(res.Best[:d])
	stride := len(res.Samples) / count
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(res.Samples) && len(post.Thetas) < count; i += stride {
		s := res.Samples[i]
		post.Thetas = append(post.Thetas, c.Scaler.FromUnit(s[:d]))
		post.SigmaDelta = append(post.SigmaDelta, s[d])
		post.SigmaEps = append(post.SigmaEps, s[d+1])
	}
	return post, runErr
}

// EmulatorBand returns the emulator's mean and 95% band at a natural-units
// θ — the green-curve visualization of Figure 16.
func (c *Calibrator) EmulatorBand(theta []float64) (mean, lo, hi []float64) {
	u := c.Scaler.ToUnit(theta)
	m, v := c.Em.Predict(u)
	lo = make([]float64, len(m))
	hi = make([]float64, len(m))
	for i := range m {
		sd := math.Sqrt(v[i])
		lo[i] = m[i] - 1.96*sd
		hi[i] = m[i] + 1.96*sd
	}
	return m, lo, hi
}

// PredictiveBand returns the mean and 95% band at θ including the
// discrepancy and observation-noise scales — the full observation model
// y = η(θ) + δ + ε. This is the band Figure 16's acceptance check uses.
func (c *Calibrator) PredictiveBand(theta []float64, sdDelta, sdEps float64) (mean, lo, hi []float64) {
	u := c.Scaler.ToUnit(theta)
	m, v := c.Em.Predict(u)
	lo = make([]float64, len(m))
	hi = make([]float64, len(m))
	for i := range m {
		// Pointwise discrepancy variance: σδ² Σ_k V[i,k]².
		vd := 0.0
		for k := 0; k < c.VBasis.Cols; k++ {
			b := c.VBasis.At(i, k)
			vd += b * b
		}
		sd := math.Sqrt(v[i] + sdDelta*sdDelta*vd + sdEps*sdEps)
		lo[i] = m[i] - 1.96*sd
		hi[i] = m[i] + 1.96*sd
	}
	return m, lo, hi
}

// CoverageFraction reports the fraction of observed points falling inside
// the emulator's 95% band at θ, the paper's "result is good if the ground
// truth falls between the green curves" acceptance check.
func (c *Calibrator) CoverageFraction(theta []float64) float64 {
	_, lo, hi := c.EmulatorBand(theta)
	return c.coverage(lo, hi)
}

// PredictiveCoverage is CoverageFraction under the full observation model.
func (c *Calibrator) PredictiveCoverage(theta []float64, sdDelta, sdEps float64) float64 {
	_, lo, hi := c.PredictiveBand(theta, sdDelta, sdEps)
	return c.coverage(lo, hi)
}

func (c *Calibrator) coverage(lo, hi []float64) float64 {
	in := 0
	for i, y := range c.Obs {
		if y >= lo[i] && y <= hi[i] {
			in++
		}
	}
	return float64(in) / float64(len(c.Obs))
}

// Log1p transforms a cumulative count series to log scale, the paper's
// "logged reported case counts" observable; the +1 guards zero counts.
func Log1p(series []float64) []float64 {
	out := make([]float64, len(series))
	for i, v := range series {
		out[i] = math.Log1p(v)
	}
	return out
}

// Expm1 inverts Log1p.
func Expm1(series []float64) []float64 {
	out := make([]float64, len(series))
	for i, v := range series {
		out[i] = math.Expm1(v)
	}
	return out
}
