package calib

import (
	"math"
	"testing"

	"repro/internal/lhs"
	"repro/internal/linalg"
	"repro/internal/stats"
)

// synthetic simulator: logistic cumulative curve driven by two parameters
// (growth ~ TAU, size ~ SYMP), the shape the real workflow calibrates.
func simCurve(theta []float64, T int) []float64 {
	growth := theta[0]
	size := theta[1]
	out := make([]float64, T)
	for d := 0; d < T; d++ {
		out[d] = size / (1 + math.Exp(-growth*(float64(d)-float64(T)/2)))
	}
	return out
}

func buildDesign(t testing.TB, seed uint64, n, T int) *Design {
	t.Helper()
	r := stats.NewRNG(seed)
	ranges := []lhs.Range{
		{Name: "TAU", Lo: 0.1, Hi: 0.5},
		{Name: "SYMP", Lo: 500, Hi: 5000},
	}
	d, err := NewLHSDesign(r, n, ranges)
	if err != nil {
		t.Fatal(err)
	}
	d.Outputs = linalg.NewMatrix(n, T)
	for i, th := range d.Thetas {
		curve := simCurve(th, T)
		for j, v := range curve {
			d.Outputs.Set(i, j, v)
		}
	}
	return d
}

func TestDiscrepancyBasisShape(t *testing.T) {
	v := DiscrepancyBasis(70, 15, 10)
	if v.Rows != 70 {
		t.Fatalf("rows %d want 70", v.Rows)
	}
	// 70-day horizon, 10-day spacing → 8 kernels (paper: pδ = 7 for its
	// horizon). Kernels peak at their centers.
	if v.Cols != 8 {
		t.Fatalf("cols %d want 8", v.Cols)
	}
	for j := 0; j < v.Cols; j++ {
		center := j * 10
		if center >= 70 {
			continue
		}
		if v.At(center, j) < 0.99 {
			t.Fatalf("kernel %d does not peak at its center: %v", j, v.At(center, j))
		}
	}
	// Defaults applied for non-positive arguments.
	d := DiscrepancyBasis(30, 0, 0)
	if d.Cols != 4 {
		t.Fatalf("default spacing cols %d want 4", d.Cols)
	}
}

func TestFitValidation(t *testing.T) {
	d := buildDesign(t, 1, 20, 40)
	if _, err := Fit(d, make([]float64, 10), Config{}); err == nil {
		t.Error("mismatched observation length accepted")
	}
	d2 := &Design{Ranges: d.Ranges, Thetas: d.Thetas}
	if _, err := Fit(d2, make([]float64, 40), Config{}); err == nil {
		t.Error("missing outputs accepted")
	}
}

func TestCalibrationRecoversParameters(t *testing.T) {
	const T = 60
	d := buildDesign(t, 2, 80, T)
	truth := []float64{0.3, 2500}
	obs := simCurve(truth, T)
	// Small observation noise.
	r := stats.NewRNG(3)
	for i := range obs {
		obs[i] += r.Norm() * 10
	}
	c, err := Fit(d, obs, Config{NumBasis: 5})
	if err != nil {
		t.Fatal(err)
	}
	post, err := c.Sample(Config{Steps: 1500, BurnIn: 800, Seed: 4}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(post.Thetas) == 0 {
		t.Fatal("empty posterior")
	}
	// Posterior means near truth.
	var mTau, mSymp float64
	for _, th := range post.Thetas {
		mTau += th[0]
		mSymp += th[1]
	}
	mTau /= float64(len(post.Thetas))
	mSymp /= float64(len(post.Thetas))
	if math.Abs(mTau-truth[0]) > 0.08 {
		t.Errorf("posterior TAU %v want ≈%v", mTau, truth[0])
	}
	if math.Abs(mSymp-truth[1]) > 600 {
		t.Errorf("posterior SYMP %v want ≈%v", mSymp, truth[1])
	}
	// MAP also close.
	if math.Abs(post.MAPTheta[0]-truth[0]) > 0.1 {
		t.Errorf("MAP TAU %v", post.MAPTheta[0])
	}
}

// The Figure 15 property: the posterior is tighter than the prior.
func TestPosteriorTighterThanPrior(t *testing.T) {
	const T = 60
	d := buildDesign(t, 5, 80, T)
	obs := simCurve([]float64{0.3, 2500}, T)
	c, err := Fit(d, obs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	post, err := c.Sample(Config{Steps: 1200, BurnIn: 600, Seed: 6}, 100)
	if err != nil {
		t.Fatal(err)
	}
	priorTau := make([]float64, len(d.Thetas))
	for i, th := range d.Thetas {
		priorTau[i] = th[0]
	}
	postTau := make([]float64, len(post.Thetas))
	for i, th := range post.Thetas {
		postTau[i] = th[0]
	}
	if stats.StdDev(postTau) >= stats.StdDev(priorTau) {
		t.Fatalf("posterior TAU sd %v not tighter than prior %v",
			stats.StdDev(postTau), stats.StdDev(priorTau))
	}
}

// The Figure 16 property: the emulator band at a good θ covers the data.
func TestEmulatorBandCoversTruth(t *testing.T) {
	const T = 60
	d := buildDesign(t, 7, 80, T)
	truth := []float64{0.3, 2500}
	obs := simCurve(truth, T)
	c, err := Fit(d, obs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mean, lo, hi := c.EmulatorBand(truth)
	if len(mean) != T || len(lo) != T || len(hi) != T {
		t.Fatal("band shape wrong")
	}
	for i := range mean {
		if lo[i] > mean[i] || mean[i] > hi[i] {
			t.Fatalf("band inverted at %d", i)
		}
	}
	if cov := c.CoverageFraction(truth); cov < 0.8 {
		t.Fatalf("coverage %v at the true parameters", cov)
	}
	// A far-off θ should fit worse than the truth.
	bad := []float64{0.12, 600}
	if c.CoverageFraction(bad) >= c.CoverageFraction(truth) {
		t.Fatal("coverage does not discriminate good from bad parameters")
	}
}

func TestSampleHyperparameterRanges(t *testing.T) {
	const T = 40
	d := buildDesign(t, 8, 50, T)
	obs := simCurve([]float64{0.25, 2000}, T)
	c, err := Fit(d, obs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	post, err := c.Sample(Config{Steps: 400, BurnIn: 200, Seed: 9}, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range post.SigmaDelta {
		if post.SigmaDelta[i] <= 0 || post.SigmaEps[i] <= 0 {
			t.Fatal("non-positive scale sampled")
		}
	}
	if post.AcceptRate <= 0 || post.AcceptRate >= 1 {
		t.Fatalf("acceptance rate %v", post.AcceptRate)
	}
	// Thetas stay inside the prior ranges.
	for _, th := range post.Thetas {
		if th[0] < 0.1 || th[0] > 0.5 || th[1] < 500 || th[1] > 5000 {
			t.Fatalf("posterior sample escaped prior box: %v", th)
		}
	}
}

// The predictive band (η + δ + ε) is wider than the emulator-only band and
// covers more of the data.
func TestPredictiveBandWiderThanEmulator(t *testing.T) {
	const T = 50
	d := buildDesign(t, 9, 60, T)
	truth := []float64{0.3, 2500}
	obs := simCurve(truth, T)
	// Add systematic discrepancy the emulator can't express.
	for i := range obs {
		obs[i] += 100 * math.Sin(float64(i)/8)
	}
	c, err := Fit(d, obs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, emLo, emHi := c.EmulatorBand(truth)
	_, pLo, pHi := c.PredictiveBand(truth, 80, 20)
	for i := 0; i < T; i++ {
		if pHi[i]-pLo[i] < emHi[i]-emLo[i] {
			t.Fatalf("predictive band narrower than emulator band at %d", i)
		}
	}
	emCov := c.CoverageFraction(truth)
	pCov := c.PredictiveCoverage(truth, 80, 20)
	if pCov < emCov {
		t.Fatalf("predictive coverage %v below emulator coverage %v", pCov, emCov)
	}
	if pCov < 0.9 {
		t.Fatalf("predictive coverage %v with generous scales", pCov)
	}
}

func TestLog1pRoundTrip(t *testing.T) {
	xs := []float64{0, 1, 10, 1000}
	back := Expm1(Log1p(xs))
	for i := range xs {
		if math.Abs(back[i]-xs[i]) > 1e-9*(1+xs[i]) {
			t.Fatalf("roundtrip %v want %v", back[i], xs[i])
		}
	}
}

func TestNewLHSDesignErrors(t *testing.T) {
	r := stats.NewRNG(10)
	if _, err := NewLHSDesign(r, 0, []lhs.Range{{Lo: 0, Hi: 1}}); err == nil {
		t.Fatal("zero-point design accepted")
	}
}
