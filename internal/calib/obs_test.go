package calib

import (
	"context"
	"testing"
	"time"

	obspkg "repro/internal/obs"
	"repro/internal/stats"
)

// Tracing must not perturb the sampler: the same fitted calibrator sampled
// with and without a tracer returns a bit-identical posterior, and the
// traced run nests the MCMC spans under the calibrate span.
func TestTracedSampleBitIdentical(t *testing.T) {
	T := 70
	d := buildDesign(t, 11, 40, T)
	truth := []float64{0.3, 2500}
	y := simCurve(truth, T)
	r := stats.NewRNG(3)
	for i := range y {
		y[i] += r.Norm() * 10
	}
	c, err := Fit(d, y, Config{NumBasis: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Steps: 400, BurnIn: 200, Seed: 9}

	plain, err := c.Sample(cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	col := obspkg.NewCollector(nil)
	tr := obspkg.NewTracer(col, obspkg.WithClock(obspkg.FixedClock(time.Unix(0, 0), time.Millisecond)))
	ctx := obspkg.WithTracer(context.Background(), tr)
	traced, err := c.SampleCtx(ctx, cfg, 50)
	if err != nil {
		t.Fatal(err)
	}

	if len(plain.Thetas) != len(traced.Thetas) {
		t.Fatalf("%d traced thetas vs %d plain", len(traced.Thetas), len(plain.Thetas))
	}
	for i := range plain.Thetas {
		for j := range plain.Thetas[i] {
			if plain.Thetas[i][j] != traced.Thetas[i][j] {
				t.Fatalf("theta[%d][%d] diverges under tracing: %v vs %v",
					i, j, plain.Thetas[i][j], traced.Thetas[i][j])
			}
		}
	}

	spans := map[string][]obspkg.Entry{}
	gates := 0
	for _, e := range col.Entries() {
		switch e.Type {
		case obspkg.EntrySpan:
			spans[e.Name] = append(spans[e.Name], e)
		case obspkg.EntryEvent:
			if e.Name == "calibration.gate" {
				gates++
			}
		}
	}
	if len(spans["calibrate"]) != 1 {
		t.Fatalf("%d calibrate spans, want 1", len(spans["calibrate"]))
	}
	if len(spans["mcmc"]) != 1 {
		t.Fatalf("%d mcmc spans, want 1", len(spans["mcmc"]))
	}
	if got, want := spans["mcmc"][0].Parent, spans["calibrate"][0].Span; got != want {
		t.Fatalf("mcmc span parent %d, want calibrate %d", got, want)
	}
	if len(spans["mcmc.chain"]) == 0 {
		t.Fatal("no mcmc.chain spans")
	}
	for _, e := range spans["mcmc.chain"] {
		if e.Parent != spans["mcmc"][0].Span {
			t.Fatalf("chain span parent %d, want mcmc %d", e.Parent, spans["mcmc"][0].Span)
		}
	}
	if gates != 1 {
		t.Fatalf("%d calibration.gate events, want 1", gates)
	}
}
