package calib

import (
	"testing"

	"repro/internal/stats"
)

// benchCalibrator builds a Fig 15-sized problem: a 100-cell LHS design over
// a 70-day horizon, the configuration the production calibration workflow
// runs at (EXPERIMENTS.md).
func benchCalibrator(b *testing.B) *Calibrator {
	b.Helper()
	d := buildDesign(b, 42, 100, 70)
	obs := simCurve([]float64{0.3, 2500}, 70)
	r := stats.NewRNG(43)
	for i := range obs {
		obs[i] += r.Norm() * 20
	}
	c, err := Fit(d, obs, Config{})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkLogLikDense measures one likelihood evaluation on the
// pre-Woodbury reference path: build the dense T×T covariance and
// Cholesky-factor it.
func BenchmarkLogLikDense(b *testing.B) {
	c := benchCalibrator(b)
	s := c.newScratch()
	theta := []float64{0.4, 0.6}
	sd := stats.StdDev(c.Obs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Em.PredictInto(theta, s.mean, s.variance, s.buf)
		for j := range s.r {
			s.r[j] = c.Obs[j] - s.mean[j]
		}
		sink = c.logLikDense(0.3*sd, 0.1*sd, s)
	}
}

// BenchmarkLogLikWoodbury measures the same evaluation on the Woodbury
// fast path: O(T·pδ²) with a pδ×pδ Cholesky.
func BenchmarkLogLikWoodbury(b *testing.B) {
	c := benchCalibrator(b)
	s := c.newScratch()
	theta := []float64{0.4, 0.6}
	sd := stats.StdDev(c.Obs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = c.logLik(theta, 0.3*sd, 0.1*sd, s)
	}
}

var sink float64

// benchSample runs Sample end to end at the production draw budget: 1200
// total MCMC steps (half burn-in), 100 posterior draws. Multi-chain
// configurations split the same budget across chains, the standard way a
// fixed budget buys R̂/ESS diagnostics.
func benchSample(b *testing.B, cfg Config, steps int) {
	c := benchCalibrator(b)
	cfg.Steps, cfg.BurnIn, cfg.Seed = steps, steps/2, 9
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post, err := c.Sample(cfg, 100)
		if err != nil {
			b.Fatal(err)
		}
		sink = post.AcceptRate
	}
}

// BenchmarkSampleSerialDense is the stack as it stood before this change:
// one 1200-step chain on the dense-Cholesky likelihood.
func BenchmarkSampleSerialDense(b *testing.B) {
	benchSample(b, Config{Chains: 1, Parallelism: 1, DenseLik: true}, 1200)
}

// BenchmarkSampleSerialWoodbury isolates the likelihood change: the same
// single 1200-step chain, Woodbury likelihood.
func BenchmarkSampleSerialWoodbury(b *testing.B) {
	benchSample(b, Config{Chains: 1, Parallelism: 1}, 1200)
}

// BenchmarkSampleMultiWoodbury is the new default shape at the same total
// budget: four over-dispersed 300-step chains run concurrently on the
// Woodbury likelihood, pooled after burn-in.
func BenchmarkSampleMultiWoodbury(b *testing.B) {
	benchSample(b, Config{}, 300)
}
