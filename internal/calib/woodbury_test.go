package calib

import (
	"hash/fnv"
	"math"
	"testing"

	"repro/internal/stats"
)

// The Woodbury fast path must agree with the dense-Cholesky reference on
// the same Σ = D + σδ²VVᵀ to near machine precision, across random
// parameter points, hyperparameter scales, and discrepancy-kernel shapes.
func TestWoodburyMatchesDense(t *testing.T) {
	specs := []struct {
		seed   uint64
		n, T   int
		sd, sp float64 // discrepancy kernel shape
	}{
		{31, 40, 60, 15, 10},
		{32, 30, 35, 7, 5},   // more kernels per day
		{33, 25, 80, 25, 20}, // fewer, wider kernels
	}
	for _, spec := range specs {
		d := buildDesign(t, spec.seed, spec.n, spec.T)
		obs := simCurve([]float64{0.3, 2500}, spec.T)
		r := stats.NewRNG(spec.seed ^ 0xABC)
		for i := range obs {
			obs[i] += r.Norm() * 20
		}
		c, err := Fit(d, obs, Config{DiscrepancySD: spec.sd, DiscrepancySpacing: spec.sp})
		if err != nil {
			t.Fatal(err)
		}
		sFast := c.newScratch()
		sDense := c.newScratch()
		obsScale := stats.StdDev(c.Obs)
		for trial := 0; trial < 60; trial++ {
			theta := []float64{r.Float64(), r.Float64()}
			// Cover the σδ → 0 edge (Σ nearly diagonal) through large
			// discrepancy scales. σε stays in the prior-plausible range:
			// σε ≪ σδ makes cond(Σ) ≈ (σδ/σε)² and the *dense* reference
			// itself loses digits, so comparing there tests nothing.
			sdDelta := math.Pow(10, -6+6.5*r.Float64()) * obsScale
			sdEps := math.Pow(10, -1.5+2*r.Float64()) * obsScale
			fast := c.logLik(theta, sdDelta, sdEps, sFast)
			c.Em.PredictInto(theta, sDense.mean, sDense.variance, sDense.buf)
			for i := range sDense.r {
				sDense.r[i] = c.Obs[i] - sDense.mean[i]
			}
			dense := c.logLikDense(sdDelta, sdEps, sDense)
			rel := math.Abs(fast-dense) / math.Max(1, math.Abs(dense))
			if math.IsNaN(rel) || rel > 1e-8 {
				t.Fatalf("spec %v trial %d: woodbury %v vs dense %v (rel %g) at θ=%v σδ=%g σε=%g",
					spec.seed, trial, fast, dense, rel, theta, sdDelta, sdEps)
			}
		}
	}
}

func hashPosterior(p *Posterior) uint64 {
	h := fnv.New64a()
	w := func(f float64) {
		b := math.Float64bits(f)
		var buf [8]byte
		for i := range buf {
			buf[i] = byte(b >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, th := range p.Thetas {
		for _, v := range th {
			w(v)
		}
	}
	for i := range p.SigmaDelta {
		w(p.SigmaDelta[i])
		w(p.SigmaEps[i])
	}
	for _, v := range p.MAPTheta {
		w(v)
	}
	w(p.MAPLogPost)
	w(p.AcceptRate)
	for i := range p.RHat {
		w(p.RHat[i])
		w(p.ESS[i])
	}
	return h.Sum64()
}

func goldenSample(t *testing.T, parallelism int) *Posterior {
	t.Helper()
	d := buildDesign(t, 21, 30, 40)
	obs := simCurve([]float64{0.3, 2500}, 40)
	c, err := Fit(d, obs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	post, err := c.Sample(Config{
		Steps: 300, BurnIn: 150, Seed: 99,
		Chains: 3, Parallelism: parallelism,
	}, 50)
	if err != nil {
		t.Fatal(err)
	}
	return post
}

// sampleGoldenHash pins the exact pooled posterior of the seeded
// three-chain run above. It was captured from the first implementation of
// the multi-chain sampler; any change to the RNG layout, chain seeding,
// pooling order, emulator fit, or likelihood numerics will move it — bump
// deliberately, never silently.
const sampleGoldenHash uint64 = 0x92760d4f1aa0c219

// The tentpole contract: Calibrator.Sample is bit-deterministic for a
// fixed seed regardless of how many workers run the chains, and matches
// the pinned golden posterior.
func TestSampleGoldenPinAndParallelismDeterminism(t *testing.T) {
	serial := goldenSample(t, 1)
	if got := hashPosterior(serial); got != sampleGoldenHash {
		t.Errorf("posterior hash %#x want %#x (parallelism 1)", got, sampleGoldenHash)
	}
	for _, par := range []int{2, 3} {
		p := goldenSample(t, par)
		if got := hashPosterior(p); got != hashPosterior(serial) {
			t.Errorf("posterior differs at parallelism %d", par)
		}
	}
	if serial.Chains != 3 || len(serial.RHat) != 4 || len(serial.ESS) != 4 {
		t.Fatalf("diagnostics missing: chains %d, R̂ %v", serial.Chains, serial.RHat)
	}
}

// The dense and Woodbury likelihoods drive the sampler through identical
// accept/reject decisions only when they agree to rounding; the posterior
// means must therefore be statistically indistinguishable. (Bit equality
// is not guaranteed — the two paths round differently.)
func TestSampleDenseAndWoodburyAgree(t *testing.T) {
	d := buildDesign(t, 22, 40, 40)
	obs := simCurve([]float64{0.3, 2500}, 40)
	c, err := Fit(d, obs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Steps: 600, BurnIn: 300, Seed: 7, Chains: 2}
	fast, err := c.Sample(base, 100)
	if err != nil {
		t.Fatal(err)
	}
	dense := base
	dense.DenseLik = true
	slow, err := c.Sample(dense, 100)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		var mf, ms float64
		for i := range fast.Thetas {
			mf += fast.Thetas[i][k]
			ms += slow.Thetas[i][k]
		}
		mf /= float64(len(fast.Thetas))
		ms /= float64(len(slow.Thetas))
		span := c.Scaler.Hi[k] - c.Scaler.Lo[k]
		if math.Abs(mf-ms) > 0.1*span {
			t.Errorf("dim %d: woodbury posterior mean %v vs dense %v", k, mf, ms)
		}
	}
}

// A convergence gate that cannot be met must surface, with the posterior
// still available for inspection.
func TestSampleConvergenceGateSurfaces(t *testing.T) {
	d := buildDesign(t, 23, 30, 40)
	obs := simCurve([]float64{0.3, 2500}, 40)
	c, err := Fit(d, obs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 4 chains, tiny chains, an ESS demand they cannot meet.
	post, err := c.Sample(Config{
		Steps: 30, BurnIn: 10, Seed: 3, Chains: 4, MinESS: 1e9,
	}, 20)
	if err == nil {
		t.Fatal("impossible MinESS gate passed silently")
	}
	if post == nil {
		t.Fatal("posterior withheld on gate failure")
	}
	if post.Converged {
		t.Fatal("Converged true despite failed gate")
	}
}
