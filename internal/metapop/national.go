package metapop

import (
	"fmt"
	"math"

	"repro/internal/synthpop"
)

// This file extends the metapopulation model to the national scale the
// paper's forecasting heritage uses ("the US national-scale models we have
// employed for forecasting spatio-temporal spread of seasonal influenza"):
// all 3,142 counties of the 51 regions, with dense within-state gravity
// coupling replaced by a sparse link structure so a 200-day national run
// stays fast.

// Link is one directed coupling edge of the sparse national model.
type Link struct {
	To int
	W  float64
}

// SetSparseLinks switches the model to sparse coupling. Each county's
// links (including its self-link) must sum to 1.
func (m *Model) SetSparseLinks(links [][]Link) error {
	if len(links) != len(m.Counties) {
		return fmt.Errorf("metapop: %d link rows for %d counties", len(links), len(m.Counties))
	}
	for i, row := range links {
		sum := 0.0
		for _, l := range row {
			if l.To < 0 || l.To >= len(m.Counties) {
				return fmt.Errorf("metapop: link target %d out of range (county %d)", l.To, i)
			}
			if l.W < 0 {
				return fmt.Errorf("metapop: negative link weight at county %d", i)
			}
			sum += l.W
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("metapop: county %d links sum to %g", i, sum)
		}
	}
	m.links = links
	m.Coupling = nil
	return nil
}

// lambdaAt computes the infectious pressure for county c from either the
// dense matrix or the sparse links.
func (m *Model) lambdaAt(c int, infectious []float64) float64 {
	if m.links != nil {
		lambda := 0.0
		for _, l := range m.links[c] {
			lambda += l.W * infectious[l.To] / m.Counties[l.To].Pop
		}
		return lambda
	}
	lambda := 0.0
	row := m.Coupling[c]
	for j, w := range row {
		if w == 0 {
			continue
		}
		lambda += w * infectious[j] / m.Counties[j].Pop
	}
	return lambda
}

// NationalConfig tunes NewUS.
type NationalConfig struct {
	// SelfWeight is each county's within-county contact share.
	SelfWeight float64
	// InStateWeight is the share spread over the county's within-state
	// neighbors (to the state's top counties, gravity-weighted).
	InStateWeight float64
	// The remainder (1 − Self − InState) couples each state's largest
	// county to the other states' largest counties — the air-travel
	// backbone that carries the epidemic between states.
	NeighborsPerCounty int
}

// DefaultNationalConfig returns the standard parameters.
func DefaultNationalConfig() NationalConfig {
	return NationalConfig{SelfWeight: 0.88, InStateWeight: 0.10, NeighborsPerCounty: 5}
}

// NewUS builds the sparse national model over all 51 regions.
func NewUS(cfg NationalConfig) (*Model, error) {
	if cfg.SelfWeight <= 0 || cfg.SelfWeight >= 1 {
		cfg.SelfWeight = 0.88
	}
	if cfg.InStateWeight < 0 || cfg.SelfWeight+cfg.InStateWeight >= 1 {
		cfg.InStateWeight = (1 - cfg.SelfWeight) * 0.8
	}
	if cfg.NeighborsPerCounty <= 0 {
		cfg.NeighborsPerCounty = 5
	}
	m := &Model{State: "US"}
	// Build counties state by state, remembering each state's block and
	// its hub (largest county, which is index 0 of the block under the
	// Zipf profile).
	type block struct{ start, n, hub int }
	var blocks []block
	for _, st := range synthpop.States {
		weights := make([]float64, st.Counties)
		total := 0.0
		for i := range weights {
			weights[i] = 1 / math.Pow(float64(i+1), 0.8)
			total += weights[i]
		}
		start := len(m.Counties)
		for c := 0; c < st.Counties; c++ {
			pop := float64(st.Population) * weights[c] / total
			if pop < 100 {
				pop = 100
			}
			m.Counties = append(m.Counties, County{
				FIPS: int32(synthpop.CountyFIPS(st.FIPS, c)), Pop: pop,
			})
		}
		blocks = append(blocks, block{start: start, n: st.Counties, hub: start})
	}
	interState := 1 - cfg.SelfWeight - cfg.InStateWeight
	links := make([][]Link, len(m.Counties))
	for bi, b := range blocks {
		// Within-state: every county couples to the state's top
		// NeighborsPerCounty counties, gravity-weighted.
		top := cfg.NeighborsPerCounty
		if top > b.n {
			top = b.n
		}
		for c := 0; c < b.n; c++ {
			idx := b.start + c
			row := []Link{{To: idx, W: cfg.SelfWeight}}
			// Gravity targets: the state's largest counties (excluding
			// self when it is among them).
			var targets []int
			for k := 0; k < top; k++ {
				if b.start+k != idx {
					targets = append(targets, b.start+k)
				}
			}
			inState := cfg.InStateWeight
			hubShare := interState
			if len(targets) == 0 {
				// Single-county state (DC): everything not self goes
				// inter-state from the hub.
				row[0].W += inState
				inState = 0
			} else {
				popSum := 0.0
				for _, tgt := range targets {
					popSum += m.Counties[tgt].Pop
				}
				for _, tgt := range targets {
					row = append(row, Link{To: tgt, W: inState * m.Counties[tgt].Pop / popSum})
				}
			}
			if idx == b.hub {
				// Hub: inter-state share to the other states' hubs,
				// population-weighted.
				popSum := 0.0
				for bj, ob := range blocks {
					if bj != bi {
						popSum += m.Counties[ob.hub].Pop
					}
				}
				for bj, ob := range blocks {
					if bj == bi {
						continue
					}
					row = append(row, Link{To: ob.hub, W: hubShare * m.Counties[ob.hub].Pop / popSum})
				}
			} else {
				// Non-hub: inter-state share routed via own hub.
				merged := false
				for i := range row {
					if row[i].To == b.hub {
						row[i].W += hubShare
						merged = true
						break
					}
				}
				if !merged {
					row = append(row, Link{To: b.hub, W: hubShare})
				}
			}
			links[idx] = row
		}
	}
	if err := m.SetSparseLinks(links); err != nil {
		return nil, err
	}
	return m, nil
}

// CountyIndexByFIPS returns the index of a county in the model.
func (m *Model) CountyIndexByFIPS(fips int32) (int, error) {
	for i, c := range m.Counties {
		if c.FIPS == fips {
			return i, nil
		}
	}
	return 0, fmt.Errorf("metapop: county %d not in model", fips)
}

// StateCumConfirmedByPrefix sums cumulative confirmed over the counties of
// one state (by FIPS prefix) — the state-level series of a national run.
func (t *Trajectory) StateCumConfirmedByPrefix(m *Model, stateFIPS int) []float64 {
	out := make([]float64, t.Days)
	for c := range m.Counties {
		if synthpop.StateOfCountyFIPS(int(m.Counties[c].FIPS)) != stateFIPS {
			continue
		}
		acc := 0.0
		for d := 0; d < t.Days; d++ {
			acc += t.NewConfirmed[c][d]
			out[d] += acc
		}
	}
	return out
}
