package metapop

import (
	"fmt"
	"math"

	"repro/internal/mcmc"
	"repro/internal/surveillance"
)

// CalibConfig controls the direct-simulation Bayesian calibration of the
// metapopulation model (Appendix E, "Metapopulation Model Calibration"):
// the likelihood treats each county's observed daily counts as Gaussian
// around the model's output with standard deviation equal to 20% of the
// daily counts, counties independent; priors are uniform over the given
// ranges; the posterior is explored with Metropolis updates.
type CalibConfig struct {
	// Bounds on (Beta, Detect); Sigma and Gamma stay fixed while the
	// paper's "transmissibility and infectious duration" are swept via
	// Beta and (optionally) Gamma when CalibrateGamma is set.
	BetaLo, BetaHi     float64
	DetectLo, DetectHi float64
	GammaLo, GammaHi   float64
	CalibrateGamma     bool
	Sigma, Gamma       float64

	// Mitigation calibration: when CalibrateMitigation is set, a
	// transmission-reduction factor applied from MitigationStart onward
	// is sampled alongside the disease parameters — the paper's
	// "better-modeled mitigations" dimension of the calibration loop.
	CalibrateMitigation        bool
	MitigationStart            int
	MitigationLo, MitigationHi float64

	Days      int
	Seeds     []Seed
	Scenarios []Scenario

	Steps, BurnIn int
	Seed          uint64
}

// CalibResult carries the posterior samples as Params.
type CalibResult struct {
	Posterior  []Params
	MAP        Params
	AcceptRate float64
	// Mitigations holds the per-draw mitigation factors when
	// CalibrateMitigation was set (parallel to Posterior); MAPMitigation
	// is the factor of the MAP draw (1 when not calibrated).
	Mitigations   []float64
	MAPMitigation float64
}

// MitigationScenario renders a calibrated factor as a Scenario starting at
// the configured day and lasting through the horizon.
func MitigationScenario(start int, factor float64) Scenario {
	return Scenario{Name: "calibrated-mitigation", Start: start, End: 1 << 30, Factor: factor}
}

// noiseSD returns the paper's observation noise: 20% of the daily count,
// floored so zero-count days don't produce infinite precision.
func noiseSD(y float64) float64 {
	sd := 0.2 * y
	if sd < 1 {
		sd = 1
	}
	return sd
}

// LogLikelihood evaluates the per-county Gaussian likelihood of the truth
// given a model trajectory. Following case study 2 ("Logged values of
// cumulative counts were modeled as noisy realization of the underlying
// disease dynamics"), the comparison is on cumulative counts with the
// Appendix E noise scale of 20% of the observed count.
func LogLikelihood(truth *surveillance.StateTruth, traj *Trajectory) float64 {
	days := truth.Days
	if traj.Days < days {
		days = traj.Days
	}
	ll := 0.0
	for c := range truth.Counties {
		if c >= len(traj.NewConfirmed) {
			break
		}
		obs := truth.Counties[c].Daily
		sim := traj.NewConfirmed[c]
		obsCum, simCum := 0.0, 0.0
		for d := 0; d < days; d++ {
			obsCum += obs[d]
			simCum += sim[d]
			// Symmetric scale: 20% of the larger of the two counts, so
			// over-prediction against a still-zero county is penalized
			// on the same relative scale as under-prediction.
			ref := obsCum
			if simCum > ref {
				ref = simCum
			}
			sd := noiseSD(ref)
			z := (obsCum - simCum) / sd
			ll += -0.5*z*z - math.Log(sd)
		}
	}
	return ll
}

// Calibrate runs the MCMC and returns posterior parameter draws.
func (m *Model) Calibrate(truth *surveillance.StateTruth, cfg CalibConfig) (*CalibResult, error) {
	if cfg.Days <= 0 {
		cfg.Days = truth.Days
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 500
	}
	if cfg.BurnIn <= 0 {
		cfg.BurnIn = cfg.Steps / 2
	}
	if cfg.Sigma <= 0 {
		cfg.Sigma = 1.0 / 3.0
	}
	if cfg.Gamma <= 0 {
		cfg.Gamma = 1.0 / 5.0
	}
	if cfg.BetaHi <= cfg.BetaLo {
		return nil, fmt.Errorf("metapop: bad beta range [%g, %g]", cfg.BetaLo, cfg.BetaHi)
	}
	if cfg.DetectHi <= cfg.DetectLo {
		return nil, fmt.Errorf("metapop: bad detect range [%g, %g]", cfg.DetectLo, cfg.DetectHi)
	}

	lo := []float64{cfg.BetaLo, cfg.DetectLo}
	hi := []float64{cfg.BetaHi, cfg.DetectHi}
	gammaIdx, mitIdx := -1, -1
	if cfg.CalibrateGamma {
		if cfg.GammaHi <= cfg.GammaLo || cfg.GammaLo <= 0 {
			return nil, fmt.Errorf("metapop: bad gamma range [%g, %g]", cfg.GammaLo, cfg.GammaHi)
		}
		gammaIdx = len(lo)
		lo = append(lo, cfg.GammaLo)
		hi = append(hi, cfg.GammaHi)
	}
	if cfg.CalibrateMitigation {
		mlo, mhi := cfg.MitigationLo, cfg.MitigationHi
		if mlo <= 0 {
			mlo = 0.1
		}
		if mhi <= mlo {
			mhi = 1
		}
		mitIdx = len(lo)
		lo = append(lo, mlo)
		hi = append(hi, mhi)
	}
	init := make([]float64, len(lo))
	for k := range init {
		init[k] = (lo[k] + hi[k]) / 2
	}

	toParams := func(theta []float64) Params {
		p := Params{Beta: theta[0], Detect: theta[1], Sigma: cfg.Sigma, Gamma: cfg.Gamma}
		if gammaIdx >= 0 {
			p.Gamma = theta[gammaIdx]
		}
		return p
	}
	scenariosFor := func(theta []float64) []Scenario {
		if mitIdx < 0 {
			return cfg.Scenarios
		}
		return append(append([]Scenario(nil), cfg.Scenarios...),
			MitigationScenario(cfg.MitigationStart, theta[mitIdx]))
	}

	target := func(theta []float64) float64 {
		p := toParams(theta)
		traj, err := m.Run(p, cfg.Days, cfg.Seeds, scenariosFor(theta))
		if err != nil {
			return math.Inf(-1)
		}
		return LogLikelihood(truth, traj)
	}

	res, err := mcmc.Metropolis(target, mcmc.Config{
		Init: init, Lo: lo, Hi: hi,
		Steps: cfg.Steps, BurnIn: cfg.BurnIn, Thin: 1,
		StepFrac: 0.05, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	out := &CalibResult{AcceptRate: res.AcceptRate, MAP: toParams(res.Best), MAPMitigation: 1}
	if mitIdx >= 0 {
		out.MAPMitigation = res.Best[mitIdx]
	}
	for _, s := range res.Samples {
		out.Posterior = append(out.Posterior, toParams(s))
		if mitIdx >= 0 {
			out.Mitigations = append(out.Mitigations, s[mitIdx])
		}
	}
	return out, nil
}

// PredictBand runs the model at every posterior draw and returns pointwise
// (2.5%, 50%, 97.5%) bands of the state cumulative confirmed series — the
// uncertainty quantification of the prediction workflow.
func (m *Model) PredictBand(post []Params, days int, seeds []Seed, scenarios []Scenario) (lo, med, hi []float64, err error) {
	if len(post) == 0 {
		return nil, nil, nil, fmt.Errorf("metapop: empty posterior")
	}
	series := make([][]float64, 0, len(post))
	for _, p := range post {
		traj, err := m.Run(p, days, seeds, scenarios)
		if err != nil {
			return nil, nil, nil, err
		}
		series = append(series, traj.StateCumConfirmed())
	}
	lo = make([]float64, days)
	med = make([]float64, days)
	hi = make([]float64, days)
	vals := make([]float64, len(series))
	for d := 0; d < days; d++ {
		for i := range series {
			vals[i] = series[i][d]
		}
		q := quantiles3(vals)
		lo[d], med[d], hi[d] = q[0], q[1], q[2]
	}
	return lo, med, hi, nil
}

func quantiles3(vals []float64) [3]float64 {
	s := append([]float64(nil), vals...)
	// insertion sort: posterior sizes are small
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	pick := func(q float64) float64 {
		if len(s) == 1 {
			return s[0]
		}
		pos := q * float64(len(s)-1)
		lo := int(pos)
		frac := pos - float64(lo)
		if lo+1 >= len(s) {
			return s[len(s)-1]
		}
		return s[lo]*(1-frac) + s[lo+1]*frac
	}
	return [3]float64{pick(0.025), pick(0.5), pick(0.975)}
}
