// Package metapop implements the county-level metapopulation SEIR model of
// the paper's case study 2: mechanistic SEIR dynamics within each county of
// a state, coupled through a commuting matrix, "cheap to run" so that
// calibration can simulate directly inside the MCMC loop (Appendix E,
// "Metapopulation Model Calibration").
package metapop

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/synthpop"
)

// County is one patch of the metapopulation.
type County struct {
	FIPS int32
	Pop  float64
}

// Model is a fixed geography: counties plus a row-stochastic coupling
// matrix; Coupling[i][j] is the fraction of county i's effective contacts
// spent in county j.
type Model struct {
	State    string
	Counties []County
	Coupling [][]float64
	// links, when non-nil, replaces Coupling with a sparse structure
	// (see SetSparseLinks / NewUS).
	links [][]Link
}

// Params are the disease-dynamics parameters explored by calibration.
type Params struct {
	Beta   float64 // transmission rate (per day)
	Sigma  float64 // 1 / latent period
	Gamma  float64 // 1 / infectious period
	Detect float64 // fraction of infections that become confirmed cases
}

// R0 returns the basic reproduction number of the parameters.
func (p Params) R0() float64 {
	if p.Gamma == 0 {
		return 0
	}
	return p.Beta / p.Gamma
}

// Scenario modifies transmission over a time window: Beta is multiplied by
// Factor for days in [Start, End). The paper's case study 2 models five
// scenarios of social-distancing timing and strength this way.
type Scenario struct {
	Name       string
	Start, End int
	Factor     float64
}

// NewFromState builds a model whose counties follow the same Zipf
// population profile used by the other substrates, with gravity-style
// commuting coupling.
func NewFromState(st synthpop.StateInfo, selfWeight float64) (*Model, error) {
	if st.Counties <= 0 {
		return nil, fmt.Errorf("metapop: state %s has no counties", st.Code)
	}
	if selfWeight <= 0 || selfWeight >= 1 {
		selfWeight = 0.85
	}
	m := &Model{State: st.Code}
	weights := make([]float64, st.Counties)
	total := 0.0
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), 0.8)
		total += weights[i]
	}
	for c := 0; c < st.Counties; c++ {
		pop := float64(st.Population) * weights[c] / total
		if pop < 100 {
			pop = 100
		}
		m.Counties = append(m.Counties, County{FIPS: int32(synthpop.CountyFIPS(st.FIPS, c)), Pop: pop})
	}
	// Gravity coupling: off-diagonal mass proportional to destination
	// population, diagonal fixed at selfWeight.
	m.Coupling = make([][]float64, st.Counties)
	for i := range m.Coupling {
		row := make([]float64, st.Counties)
		var offTotal float64
		for j := range row {
			if j != i {
				offTotal += m.Counties[j].Pop
			}
		}
		for j := range row {
			if j == i {
				row[j] = selfWeight
			} else if offTotal > 0 {
				row[j] = (1 - selfWeight) * m.Counties[j].Pop / offTotal
			}
		}
		m.Coupling[i] = row
	}
	return m, nil
}

// Trajectory is the output of one run: per-county daily series.
type Trajectory struct {
	Days int
	// NewConfirmed[c][d] is county c's confirmed new cases on day d.
	NewConfirmed [][]float64
	// Infectious[c][d] is county c's infectious prevalence at day d.
	Infectious [][]float64
}

// StateNewConfirmed sums daily confirmed cases over counties.
func (t *Trajectory) StateNewConfirmed() []float64 {
	out := make([]float64, t.Days)
	for _, s := range t.NewConfirmed {
		for d, v := range s {
			out[d] += v
		}
	}
	return out
}

// StateCumConfirmed returns the state-level cumulative confirmed series.
func (t *Trajectory) StateCumConfirmed() []float64 {
	daily := t.StateNewConfirmed()
	out := make([]float64, len(daily))
	acc := 0.0
	for d, v := range daily {
		acc += v
		out[d] = acc
	}
	return out
}

// CountyCumConfirmed returns one county's cumulative confirmed series.
func (t *Trajectory) CountyCumConfirmed(c int) []float64 {
	out := make([]float64, t.Days)
	acc := 0.0
	for d := 0; d < t.Days; d++ {
		acc += t.NewConfirmed[c][d]
		out[d] = acc
	}
	return out
}

// Seed places initial infectious individuals in a county.
type Seed struct {
	CountyIndex int
	Infectious  float64
}

// Run integrates the coupled SEIR system for the given horizon with
// deterministic daily Euler steps. Scenario windows scale Beta. The run is
// O(days × counties²) from the coupling product — cheap, as the paper
// requires for in-loop calibration.
func (m *Model) Run(p Params, days int, seeds []Seed, scenarios []Scenario) (*Trajectory, error) {
	if days <= 0 {
		return nil, fmt.Errorf("metapop: non-positive horizon %d", days)
	}
	if p.Beta < 0 || p.Sigma <= 0 || p.Sigma > 1 || p.Gamma <= 0 || p.Gamma > 1 || p.Detect < 0 || p.Detect > 1 {
		return nil, fmt.Errorf("metapop: bad parameters %+v", p)
	}
	n := len(m.Counties)
	s := make([]float64, n)
	e := make([]float64, n)
	i := make([]float64, n)
	r := make([]float64, n)
	for c := range m.Counties {
		s[c] = m.Counties[c].Pop
	}
	for _, sd := range seeds {
		if sd.CountyIndex < 0 || sd.CountyIndex >= n {
			return nil, fmt.Errorf("metapop: seed county %d out of range", sd.CountyIndex)
		}
		amount := math.Min(sd.Infectious, s[sd.CountyIndex])
		s[sd.CountyIndex] -= amount
		i[sd.CountyIndex] += amount
	}
	traj := &Trajectory{Days: days}
	traj.NewConfirmed = make([][]float64, n)
	traj.Infectious = make([][]float64, n)
	for c := 0; c < n; c++ {
		traj.NewConfirmed[c] = make([]float64, days)
		traj.Infectious[c] = make([]float64, days)
	}
	// Effective infectious pressure per county: lambda_c = beta *
	// sum_j coupling[c][j] * I_j / N_j.
	for d := 0; d < days; d++ {
		beta := p.Beta
		for _, sc := range scenarios {
			if d >= sc.Start && d < sc.End {
				beta *= sc.Factor
			}
		}
		for c := 0; c < n; c++ {
			lambda := beta * m.lambdaAt(c, i)
			newExposed := lambda * s[c]
			if newExposed > s[c] {
				newExposed = s[c]
			}
			newInfectious := p.Sigma * e[c]
			newRecovered := p.Gamma * i[c]
			s[c] -= newExposed
			e[c] += newExposed - newInfectious
			i[c] += newInfectious - newRecovered
			r[c] += newRecovered
			traj.NewConfirmed[c][d] = p.Detect * newInfectious
			traj.Infectious[c][d] = i[c]
		}
	}
	return traj, nil
}

// RunStochastic integrates the same dynamics with binomial transition noise
// (chain-binomial), used when replicate variability matters.
func (m *Model) RunStochastic(p Params, days int, seeds []Seed, scenarios []Scenario, rng *stats.RNG) (*Trajectory, error) {
	if days <= 0 {
		return nil, fmt.Errorf("metapop: non-positive horizon %d", days)
	}
	if p.Beta < 0 || p.Sigma <= 0 || p.Sigma > 1 || p.Gamma <= 0 || p.Gamma > 1 {
		return nil, fmt.Errorf("metapop: bad parameters %+v", p)
	}
	n := len(m.Counties)
	s := make([]int, n)
	e := make([]int, n)
	i := make([]int, n)
	for c := range m.Counties {
		s[c] = int(m.Counties[c].Pop)
	}
	for _, sd := range seeds {
		amt := int(sd.Infectious)
		if amt > s[sd.CountyIndex] {
			amt = s[sd.CountyIndex]
		}
		s[sd.CountyIndex] -= amt
		i[sd.CountyIndex] += amt
	}
	traj := &Trajectory{Days: days}
	traj.NewConfirmed = make([][]float64, n)
	traj.Infectious = make([][]float64, n)
	for c := 0; c < n; c++ {
		traj.NewConfirmed[c] = make([]float64, days)
		traj.Infectious[c] = make([]float64, days)
	}
	infectious := make([]float64, n)
	for d := 0; d < days; d++ {
		beta := p.Beta
		for _, sc := range scenarios {
			if d >= sc.Start && d < sc.End {
				beta *= sc.Factor
			}
		}
		for c := 0; c < n; c++ {
			infectious[c] = float64(i[c])
		}
		for c := 0; c < n; c++ {
			pInf := 1 - math.Exp(-beta*m.lambdaAt(c, infectious))
			newE := rng.Binomial(s[c], pInf)
			newI := rng.Binomial(e[c], 1-math.Exp(-p.Sigma))
			newR := rng.Binomial(i[c], 1-math.Exp(-p.Gamma))
			s[c] -= newE
			e[c] += newE - newI
			i[c] += newI - newR
			traj.NewConfirmed[c][d] = p.Detect * float64(newI)
			traj.Infectious[c][d] = float64(i[c])
		}
	}
	return traj, nil
}
