package metapop

import (
	"math"
	"testing"

	"repro/internal/synthpop"
)

func TestNewUSStructure(t *testing.T) {
	m, err := NewUS(DefaultNationalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Counties) != synthpop.TotalCounties() {
		t.Fatalf("%d counties want %d", len(m.Counties), synthpop.TotalCounties())
	}
	if m.Coupling != nil {
		t.Fatal("national model should be sparse")
	}
	// Every county's links sum to 1 (validated by SetSparseLinks, but
	// verify the invariant holds through construction).
	for i, row := range m.links {
		sum := 0.0
		self := false
		for _, l := range row {
			sum += l.W
			if l.To == i {
				self = true
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("county %d links sum to %v", i, sum)
		}
		if !self {
			t.Fatalf("county %d missing self link", i)
		}
	}
}

func TestNationalEpidemicCrossesStates(t *testing.T) {
	m, err := NewUS(DefaultNationalConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Seed only Washington state's hub (the US epidemic's actual entry).
	wa, _ := synthpop.StateByCode("WA")
	hub, err := m.CountyIndexByFIPS(int32(synthpop.CountyFIPS(wa.FIPS, 0)))
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Beta: 0.5, Sigma: 1.0 / 3, Gamma: 1.0 / 5, Detect: 0.2}
	traj, err := m.Run(p, 250, []Seed{{CountyIndex: hub, Infectious: 50}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every state eventually sees cases through the hub backbone.
	va, _ := synthpop.StateByCode("VA")
	ny, _ := synthpop.StateByCode("NY")
	for _, st := range []synthpop.StateInfo{va, ny} {
		cum := traj.StateCumConfirmedByPrefix(m, st.FIPS)
		if cum[249] <= 0 {
			t.Fatalf("state %s never infected", st.Code)
		}
	}
	// The seeded state leads early.
	waCum := traj.StateCumConfirmedByPrefix(m, wa.FIPS)
	vaCum := traj.StateCumConfirmedByPrefix(m, va.FIPS)
	if waCum[40] <= vaCum[40] {
		t.Fatal("seeded state does not lead the early epidemic")
	}
	// Total remains bounded by the US population.
	total := traj.StateCumConfirmed()
	if total[249] > float64(synthpop.USPopulation()) {
		t.Fatalf("confirmed %v exceeds US population", total[249])
	}
}

func TestNationalRunIsFastEnough(t *testing.T) {
	// The sparse structure keeps a 100-day national run cheap: this test
	// fails by timeout if the coupling degenerates to dense.
	m, err := NewUS(DefaultNationalConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Beta: 0.4, Sigma: 1.0 / 3, Gamma: 1.0 / 5, Detect: 0.2}
	if _, err := m.Run(p, 100, []Seed{{CountyIndex: 0, Infectious: 10}}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetSparseLinksValidation(t *testing.T) {
	ri, _ := synthpop.StateByCode("RI")
	m, _ := NewFromState(ri, 0.85)
	if err := m.SetSparseLinks(make([][]Link, 2)); err == nil {
		t.Error("wrong row count accepted")
	}
	bad := make([][]Link, len(m.Counties))
	for i := range bad {
		bad[i] = []Link{{To: i, W: 0.5}} // sums to 0.5
	}
	if err := m.SetSparseLinks(bad); err == nil {
		t.Error("non-stochastic rows accepted")
	}
	bad2 := make([][]Link, len(m.Counties))
	for i := range bad2 {
		bad2[i] = []Link{{To: 99, W: 1}}
	}
	if err := m.SetSparseLinks(bad2); err == nil {
		t.Error("out-of-range target accepted")
	}
}

func TestSparseMatchesDenseOnEquivalentModel(t *testing.T) {
	// Convert RI's dense coupling to sparse links: trajectories must be
	// identical.
	ri, _ := synthpop.StateByCode("RI")
	dense, _ := NewFromState(ri, 0.85)
	sparse, _ := NewFromState(ri, 0.85)
	links := make([][]Link, len(dense.Counties))
	for i, row := range dense.Coupling {
		for j, w := range row {
			if w != 0 {
				links[i] = append(links[i], Link{To: j, W: w})
			}
		}
	}
	if err := sparse.SetSparseLinks(links); err != nil {
		t.Fatal(err)
	}
	p := Params{Beta: 0.5, Sigma: 1.0 / 3, Gamma: 1.0 / 5, Detect: 0.25}
	seeds := []Seed{{CountyIndex: 0, Infectious: 10}}
	a, err := dense.Run(p, 120, seeds, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sparse.Run(p, 120, seeds, nil)
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := a.StateCumConfirmed(), b.StateCumConfirmed()
	for d := range ca {
		if math.Abs(ca[d]-cb[d]) > 1e-6*(1+ca[d]) {
			t.Fatalf("day %d: dense %v vs sparse %v", d, ca[d], cb[d])
		}
	}
}

func TestCountyIndexByFIPS(t *testing.T) {
	m, _ := NewUS(DefaultNationalConfig())
	va, _ := synthpop.StateByCode("VA")
	fips := int32(synthpop.CountyFIPS(va.FIPS, 0))
	idx, err := m.CountyIndexByFIPS(fips)
	if err != nil || m.Counties[idx].FIPS != fips {
		t.Fatalf("lookup failed: %v", err)
	}
	if _, err := m.CountyIndexByFIPS(-5); err == nil {
		t.Error("bogus FIPS accepted")
	}
}
