package metapop

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/surveillance"
	"repro/internal/synthpop"
)

func testModel(t testing.TB) *Model {
	t.Helper()
	ri, err := synthpop.StateByCode("RI") // 5 counties: fast
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewFromState(ri, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func defaultParams() Params {
	return Params{Beta: 0.5, Sigma: 1.0 / 3.0, Gamma: 1.0 / 5.0, Detect: 0.2}
}

func TestNewFromState(t *testing.T) {
	m := testModel(t)
	if len(m.Counties) != 5 {
		t.Fatalf("%d counties want 5", len(m.Counties))
	}
	// Coupling rows are stochastic.
	for i, row := range m.Coupling {
		sum := 0.0
		for _, v := range row {
			if v < 0 {
				t.Fatalf("negative coupling at row %d", i)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
		if row[i] != 0.85 {
			t.Fatalf("diagonal %v want 0.85", row[i])
		}
	}
	// County populations descending (Zipf).
	for c := 1; c < len(m.Counties); c++ {
		if m.Counties[c].Pop > m.Counties[c-1].Pop {
			t.Fatal("county populations not descending")
		}
	}
}

func TestRunEpidemicGrows(t *testing.T) {
	m := testModel(t)
	traj, err := m.Run(defaultParams(), 120, []Seed{{CountyIndex: 0, Infectious: 10}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cum := traj.StateCumConfirmed()
	if cum[119] < 100 {
		t.Fatalf("epidemic did not grow: %v cumulative", cum[119])
	}
	for d := 1; d < len(cum); d++ {
		if cum[d] < cum[d-1]-1e-9 {
			t.Fatal("cumulative decreased")
		}
	}
}

func TestR0ControlsGrowth(t *testing.T) {
	m := testModel(t)
	seeds := []Seed{{CountyIndex: 0, Infectious: 10}}
	low := defaultParams()
	low.Beta = 0.1 // R0 = 0.5: dies out
	high := defaultParams()
	high.Beta = 0.6 // R0 = 3
	tl, err := m.Run(low, 150, seeds, nil)
	if err != nil {
		t.Fatal(err)
	}
	th, err := m.Run(high, 150, seeds, nil)
	if err != nil {
		t.Fatal(err)
	}
	cl := tl.StateCumConfirmed()
	ch := th.StateCumConfirmed()
	if ch[149] < 10*cl[149] {
		t.Fatalf("R0=3 (%v) should vastly exceed R0=0.5 (%v)", ch[149], cl[149])
	}
	if low.R0() != 0.5 || math.Abs(high.R0()-3) > 1e-9 {
		t.Fatal("R0 computation wrong")
	}
}

func TestEpidemicSpreadsAcrossCounties(t *testing.T) {
	m := testModel(t)
	traj, err := m.Run(defaultParams(), 150, []Seed{{CountyIndex: 0, Infectious: 5}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every county eventually sees cases through the coupling.
	for c := range m.Counties {
		cum := traj.CountyCumConfirmed(c)
		if cum[149] <= 0 {
			t.Fatalf("county %d never infected", c)
		}
	}
	// Seeded county leads early.
	if traj.CountyCumConfirmed(0)[30] <= traj.CountyCumConfirmed(4)[30] {
		t.Fatal("seeded county does not lead")
	}
}

func TestScenarioReducesCases(t *testing.T) {
	m := testModel(t)
	seeds := []Seed{{CountyIndex: 0, Infectious: 10}}
	base, err := m.Run(defaultParams(), 150, seeds, nil)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := m.Run(defaultParams(), 150, seeds,
		[]Scenario{{Name: "SD", Start: 20, End: 150, Factor: 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	if dist.StateCumConfirmed()[149] >= base.StateCumConfirmed()[149] {
		t.Fatal("social distancing scenario did not reduce cases")
	}
}

func TestPopulationConservedDeterministic(t *testing.T) {
	m := testModel(t)
	p := defaultParams()
	p.Detect = 1
	traj, err := m.Run(p, 300, []Seed{{CountyIndex: 0, Infectious: 10}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Total confirmed (all infections at Detect=1) cannot exceed population.
	var totalPop float64
	for _, c := range m.Counties {
		totalPop += c.Pop
	}
	if final := traj.StateCumConfirmed()[299]; final > totalPop {
		t.Fatalf("confirmed %v exceeds population %v", final, totalPop)
	}
}

func TestRunValidation(t *testing.T) {
	m := testModel(t)
	if _, err := m.Run(defaultParams(), 0, nil, nil); err == nil {
		t.Error("zero horizon accepted")
	}
	bad := defaultParams()
	bad.Gamma = 0
	if _, err := m.Run(bad, 10, nil, nil); err == nil {
		t.Error("zero gamma accepted")
	}
	if _, err := m.Run(defaultParams(), 10, []Seed{{CountyIndex: 99}}, nil); err == nil {
		t.Error("out-of-range seed accepted")
	}
	// σ and γ are daily probabilities: values above 1 would drive
	// compartments negative under the Euler step.
	badSigma := defaultParams()
	badSigma.Sigma = 1.5
	if _, err := m.Run(badSigma, 10, nil, nil); err == nil {
		t.Error("sigma > 1 accepted")
	}
	badGamma := defaultParams()
	badGamma.Gamma = 2
	if _, err := m.RunStochastic(badGamma, 10, nil, nil, stats.NewRNG(1)); err == nil {
		t.Error("gamma > 1 accepted in stochastic run")
	}
}

func TestRunStochasticMatchesDeterministicInMean(t *testing.T) {
	m := testModel(t)
	p := defaultParams()
	seeds := []Seed{{CountyIndex: 0, Infectious: 20}}
	det, err := m.Run(p, 100, seeds, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(5)
	var mean float64
	const reps = 10
	for i := 0; i < reps; i++ {
		st, err := m.RunStochastic(p, 100, seeds, nil, r)
		if err != nil {
			t.Fatal(err)
		}
		mean += st.StateCumConfirmed()[99] / reps
	}
	want := det.StateCumConfirmed()[99]
	if math.Abs(mean-want) > 0.5*want {
		t.Fatalf("stochastic mean %v far from deterministic %v", mean, want)
	}
}

func TestCalibrateRecoversBeta(t *testing.T) {
	m := testModel(t)
	trueParams := Params{Beta: 0.45, Sigma: 1.0 / 3.0, Gamma: 1.0 / 5.0, Detect: 0.25}
	seeds := []Seed{{CountyIndex: 0, Infectious: 10}}
	traj, err := m.Run(trueParams, 120, seeds, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Build a truth whose counties are the model's own output.
	truth := &surveillance.StateTruth{State: "RI", Days: 120}
	for c := range m.Counties {
		truth.Counties = append(truth.Counties, surveillance.CountySeries{
			FIPS: m.Counties[c].FIPS, Pop: int(m.Counties[c].Pop),
			Daily: traj.NewConfirmed[c],
		})
	}
	res, err := m.Calibrate(truth, CalibConfig{
		BetaLo: 0.2, BetaHi: 0.8, DetectLo: 0.05, DetectHi: 0.6,
		Sigma: trueParams.Sigma, Gamma: trueParams.Gamma,
		Days: 120, Seeds: seeds, Steps: 300, BurnIn: 300, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Posterior) == 0 {
		t.Fatal("empty posterior")
	}
	if math.Abs(res.MAP.Beta-trueParams.Beta) > 0.08 {
		t.Fatalf("MAP beta %v want ≈%v", res.MAP.Beta, trueParams.Beta)
	}
	if res.AcceptRate <= 0 || res.AcceptRate >= 1 {
		t.Fatalf("degenerate acceptance rate %v", res.AcceptRate)
	}
}

func TestCalibrateValidation(t *testing.T) {
	m := testModel(t)
	truth := &surveillance.StateTruth{State: "RI", Days: 10}
	if _, err := m.Calibrate(truth, CalibConfig{BetaLo: 1, BetaHi: 0, DetectLo: 0, DetectHi: 1}); err == nil {
		t.Error("inverted beta range accepted")
	}
	if _, err := m.Calibrate(truth, CalibConfig{BetaLo: 0, BetaHi: 1, DetectLo: 1, DetectHi: 0}); err == nil {
		t.Error("inverted detect range accepted")
	}
}

func TestPredictBandOrdered(t *testing.T) {
	m := testModel(t)
	post := []Params{
		{Beta: 0.4, Sigma: 1.0 / 3, Gamma: 1.0 / 5, Detect: 0.2},
		{Beta: 0.45, Sigma: 1.0 / 3, Gamma: 1.0 / 5, Detect: 0.2},
		{Beta: 0.5, Sigma: 1.0 / 3, Gamma: 1.0 / 5, Detect: 0.2},
		{Beta: 0.55, Sigma: 1.0 / 3, Gamma: 1.0 / 5, Detect: 0.2},
	}
	lo, med, hi, err := m.PredictBand(post, 80, []Seed{{CountyIndex: 0, Infectious: 10}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 80; d++ {
		if lo[d] > med[d] || med[d] > hi[d] {
			t.Fatalf("band not ordered at day %d", d)
		}
	}
	if _, _, _, err := m.PredictBand(nil, 10, nil, nil); err == nil {
		t.Fatal("empty posterior accepted")
	}
}

func TestLogLikelihoodPrefersTruth(t *testing.T) {
	m := testModel(t)
	p := defaultParams()
	seeds := []Seed{{CountyIndex: 0, Infectious: 10}}
	traj, _ := m.Run(p, 100, seeds, nil)
	truth := &surveillance.StateTruth{State: "RI", Days: 100}
	for c := range m.Counties {
		truth.Counties = append(truth.Counties, surveillance.CountySeries{
			FIPS: m.Counties[c].FIPS, Daily: traj.NewConfirmed[c],
		})
	}
	exact := LogLikelihood(truth, traj)
	off := p
	off.Beta = 0.8
	trajOff, _ := m.Run(off, 100, seeds, nil)
	if LogLikelihood(truth, trajOff) >= exact {
		t.Fatal("likelihood does not prefer generating parameters")
	}
}
