package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values in 100 draws", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// The child stream must differ from the parent's continuation.
	diff := false
	for i := 0; i < 64; i++ {
		if parent.Uint64() != child.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("split child mirrors parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) returned %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(6)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance %v", variance)
	}
}

func TestGammaMoments(t *testing.T) {
	r := NewRNG(8)
	shape, scale := 3.0, 2.0
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Gamma(shape, scale)
	}
	mean := sum / n
	if math.Abs(mean-shape*scale) > 0.1 {
		t.Fatalf("gamma mean %v want %v", mean, shape*scale)
	}
}

func TestGammaSmallShape(t *testing.T) {
	r := NewRNG(9)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Gamma(0.5, 1.0)
		if x < 0 {
			t.Fatalf("negative gamma variate %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.05 {
		t.Fatalf("gamma(0.5,1) mean %v want 0.5", mean)
	}
}

func TestBetaRange(t *testing.T) {
	r := NewRNG(10)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		x := r.Beta(2, 5)
		if x <= 0 || x >= 1 {
			t.Fatalf("beta variate out of (0,1): %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-2.0/7.0) > 0.01 {
		t.Fatalf("beta(2,5) mean %v want %v", mean, 2.0/7.0)
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(11)
	for _, mean := range []float64{0.5, 4, 20, 100, 500} {
		const n = 20000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("poisson(%v) mean %v", mean, got)
		}
	}
}

func TestBinomialBounds(t *testing.T) {
	r := NewRNG(12)
	for i := 0; i < 10000; i++ {
		k := r.Binomial(20, 0.3)
		if k < 0 || k > 20 {
			t.Fatalf("binomial out of range: %d", k)
		}
	}
	if r.Binomial(10, 0) != 0 {
		t.Error("binomial p=0 should be 0")
	}
	if r.Binomial(10, 1) != 10 {
		t.Error("binomial p=1 should be n")
	}
}

func TestBinomialLargeN(t *testing.T) {
	r := NewRNG(13)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Binomial(1000, 0.25))
	}
	if mean := sum / n; math.Abs(mean-250) > 2 {
		t.Fatalf("binomial(1000,0.25) mean %v", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(14)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	r := NewRNG(15)
	weights := []float64{0, 1, 3, 0}
	counts := make([]int, 4)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[r.Choice(weights)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatalf("zero-weight index chosen: %v", counts)
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("weight ratio %v want 3", ratio)
	}
}

func TestChoiceAllZeroWeights(t *testing.T) {
	r := NewRNG(16)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[r.Choice([]float64{0, 0, 0})] = true
	}
	if len(seen) < 2 {
		t.Fatal("all-zero weights should fall back to uniform")
	}
}

func TestTruncNormalBounds(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 10000; i++ {
		x := r.TruncNormal(5, 2, 1, 9)
		if x < 1 || x > 9 {
			t.Fatalf("trunc normal out of bounds: %v", x)
		}
	}
}

func TestTruncNormalDegenerate(t *testing.T) {
	r := NewRNG(18)
	// Bounds far from the mean: rejection will fail; result must clamp.
	x := r.TruncNormal(0, 0.001, 100, 101)
	if x < 100 || x > 101 {
		t.Fatalf("degenerate trunc normal escaped bounds: %v", x)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(19)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("exp(2) mean %v want 0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	r := NewRNG(20)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

// TestStateRoundTrip pins the stream-position accessors the simulator
// snapshot relies on: capturing State mid-stream and SetState-ing it into a
// second generator must reproduce the identical suffix of draws.
func TestStateRoundTrip(t *testing.T) {
	r := NewRNG(42)
	for i := 0; i < 1000; i++ {
		r.Uint64()
	}
	st := r.State()
	other := NewRNG(7)
	if err := other.SetState(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if a, b := r.Uint64(), other.Uint64(); a != b {
			t.Fatalf("draw %d diverges after state transfer: %#x vs %#x", i, a, b)
		}
	}
}

func TestSetStateRejectsAllZero(t *testing.T) {
	r := NewRNG(1)
	if err := r.SetState([4]uint64{}); err == nil {
		t.Fatal("SetState accepted the all-zero state (a xoshiro fixed point)")
	}
}
