package stats

import (
	"math"
	"testing"
)

func TestKSAcceptsCorrectDistribution(t *testing.T) {
	r := NewRNG(60)
	// Normal sampler against normal CDF.
	sample := make([]float64, 2000)
	for i := range sample {
		sample[i] = r.Normal(3, 2)
	}
	if !KSTestNormal(sample, 3, 2, 0.01) {
		t.Fatal("KS rejected a correct normal sample")
	}
	// Uniform sampler against uniform CDF.
	u := make([]float64, 2000)
	for i := range u {
		u[i] = r.Float64()
	}
	if stat := KSStatistic(u, UniformCDF(0, 1)); stat > KSCritical(len(u), 0.01) {
		t.Fatalf("KS rejected uniform: stat %v", stat)
	}
	// Exponential sampler against exponential CDF.
	e := make([]float64, 2000)
	for i := range e {
		e[i] = r.Exp(0.5)
	}
	if stat := KSStatistic(e, ExpCDF(0.5)); stat > KSCritical(len(e), 0.01) {
		t.Fatalf("KS rejected exponential: stat %v", stat)
	}
}

func TestKSRejectsWrongDistribution(t *testing.T) {
	r := NewRNG(61)
	sample := make([]float64, 2000)
	for i := range sample {
		sample[i] = r.Normal(3, 2)
	}
	if KSTestNormal(sample, 0, 2, 0.05) {
		t.Fatal("KS accepted a shifted normal")
	}
	if KSTestNormal(sample, 3, 6, 0.05) {
		t.Fatal("KS accepted a mis-scaled normal")
	}
}

func TestKSStatisticEdgeCases(t *testing.T) {
	if KSStatistic(nil, func(float64) float64 { return 0 }) != 0 {
		t.Fatal("empty sample should give 0")
	}
	if !math.IsInf(KSCritical(0, 0.05), 1) {
		t.Fatal("zero-n critical should be +Inf")
	}
	// Critical values decrease with n and increase with strictness.
	if KSCritical(100, 0.05) >= KSCritical(10, 0.05) {
		t.Fatal("critical not decreasing in n")
	}
	if KSCritical(100, 0.01) <= KSCritical(100, 0.10) {
		t.Fatal("critical ordering by alpha wrong")
	}
}

// The distribution implementations pass KS against their own CDFs at a
// strict level — a deeper check than moment tests.
func TestDistributionsPassKS(t *testing.T) {
	r := NewRNG(62)
	const n = 3000
	// Gamma(3, 2): use the CDF via regularized incomplete gamma — not in
	// the stdlib, so check via the exponential special case Gamma(1, θ).
	g := make([]float64, n)
	for i := range g {
		g[i] = r.Gamma(1, 2) // Exp(rate 1/2)
	}
	if stat := KSStatistic(g, ExpCDF(0.5)); stat > KSCritical(n, 0.01) {
		t.Fatalf("Gamma(1,2) failed KS vs Exp(0.5): %v", stat)
	}
	// TruncNormal with wide bounds ≈ normal.
	tn := make([]float64, n)
	for i := range tn {
		tn[i] = r.TruncNormal(0, 1, -100, 100)
	}
	if !KSTestNormal(tn, 0, 1, 0.01) {
		t.Fatal("wide TruncNormal failed KS vs normal")
	}
}
