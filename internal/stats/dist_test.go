package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestUniformSampleAndPDF(t *testing.T) {
	r := NewRNG(100)
	u := Uniform{Lo: 2, Hi: 5}
	for i := 0; i < 10000; i++ {
		x := u.Sample(r)
		if x < 2 || x > 5 {
			t.Fatalf("uniform sample %v out of [2,5]", x)
		}
	}
	if got := u.LogPDF(3); math.Abs(got-math.Log(1.0/3.0)) > 1e-12 {
		t.Errorf("uniform logpdf %v", got)
	}
	if !math.IsInf(u.LogPDF(1), -1) {
		t.Error("uniform logpdf outside support should be -Inf")
	}
}

func TestNormalLogPDF(t *testing.T) {
	n := Normal{Mean: 0, SD: 1}
	want := -0.5 * math.Log(2*math.Pi)
	if got := n.LogPDF(0); math.Abs(got-want) > 1e-12 {
		t.Errorf("normal logpdf at 0: %v want %v", got, want)
	}
}

func TestGammaDistMean(t *testing.T) {
	r := NewRNG(101)
	g := Gamma{Shape: 4, Rate: 2}
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += g.Sample(r)
	}
	if mean := sum / n; math.Abs(mean-2) > 0.05 {
		t.Fatalf("gamma(4,2) mean %v want 2", mean)
	}
	if !math.IsInf(g.LogPDF(-1), -1) {
		t.Error("gamma logpdf of negative should be -Inf")
	}
}

func TestBetaDistLogPDFIntegratesToOne(t *testing.T) {
	b := Beta{A: 2, B: 3}
	// Trapezoid integration of the density over (0,1).
	const n = 10000
	sum := 0.0
	for i := 1; i < n; i++ {
		x := float64(i) / n
		sum += math.Exp(b.LogPDF(x)) / n
	}
	if math.Abs(sum-1) > 0.01 {
		t.Fatalf("beta density integrates to %v", sum)
	}
}

func TestDiscreteDist(t *testing.T) {
	d, err := NewDiscrete([]float64{1, 2, 3}, []float64{0.2, 0.3, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(102)
	counts := map[float64]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	if got := float64(counts[3]) / n; math.Abs(got-0.5) > 0.02 {
		t.Fatalf("P(3) = %v want 0.5", got)
	}
	if !math.IsInf(d.LogPDF(9), -1) {
		t.Error("discrete logpdf off-support should be -Inf")
	}
}

func TestDiscreteNormalizes(t *testing.T) {
	d, err := NewDiscrete([]float64{0, 1}, []float64{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Probs[0]-0.25) > 1e-12 || math.Abs(d.Probs[1]-0.75) > 1e-12 {
		t.Fatalf("normalization wrong: %v", d.Probs)
	}
}

func TestDiscreteErrors(t *testing.T) {
	if _, err := NewDiscrete([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := NewDiscrete(nil, nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := NewDiscrete([]float64{1}, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewDiscrete([]float64{1}, []float64{0}); err == nil {
		t.Error("zero total accepted")
	}
}

func TestFixedDist(t *testing.T) {
	f := Fixed{V: 4}
	r := NewRNG(103)
	for i := 0; i < 10; i++ {
		if f.Sample(r) != 4 {
			t.Fatal("fixed dist varied")
		}
	}
	if f.LogPDF(4) != 0 || !math.IsInf(f.LogPDF(5), -1) {
		t.Error("fixed logpdf wrong")
	}
}

func TestNormCDFQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.025, 0.25, 0.5, 0.75, 0.975, 0.999} {
		x := NormQuantile(p)
		back := NormCDF(x)
		if math.Abs(back-p) > 1e-7 {
			t.Errorf("roundtrip p=%v got %v", p, back)
		}
	}
	if NormQuantile(0.5) != 0 && math.Abs(NormQuantile(0.5)) > 1e-9 {
		t.Errorf("median quantile %v", NormQuantile(0.5))
	}
}

func TestNormQuantileTails(t *testing.T) {
	if !math.IsInf(NormQuantile(0), -1) || !math.IsInf(NormQuantile(1), 1) {
		t.Error("quantile at 0/1 should be infinite")
	}
	if q := NormQuantile(0.975); math.Abs(q-1.959964) > 1e-4 {
		t.Errorf("97.5%% quantile %v want 1.95996", q)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean %v want 5", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7.0) > 1e-12 {
		t.Errorf("variance %v want %v", v, 32.0/7.0)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs mishandled")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Errorf("median %v want 3", q)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("min %v want 1", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("max %v want 5", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Errorf("q25 %v want 2", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestQuantilesMatchesQuantile(t *testing.T) {
	r := NewRNG(104)
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = r.Float64()
	}
	qs := []float64{0.05, 0.5, 0.95}
	multi := Quantiles(xs, qs...)
	for i, q := range qs {
		if single := Quantile(xs, q); single != multi[i] {
			t.Errorf("q=%v: %v vs %v", q, single, multi[i])
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if c := Correlation(xs, xs); math.Abs(c-1) > 1e-12 {
		t.Errorf("self correlation %v", c)
	}
	neg := []float64{4, 3, 2, 1}
	if c := Correlation(xs, neg); math.Abs(c+1) > 1e-12 {
		t.Errorf("negative correlation %v", c)
	}
	if c := Correlation(xs, []float64{2, 2, 2, 2}); c != 0 {
		t.Errorf("constant series correlation %v", c)
	}
}

func TestECDFMonotone(t *testing.T) {
	r := NewRNG(105)
	sample := make([]float64, 500)
	for i := range sample {
		sample[i] = r.Norm()
	}
	at := make([]float64, 41)
	for i := range at {
		at[i] = -4 + float64(i)*0.2
	}
	cdf := ECDF(sample, at)
	if !sort.Float64sAreSorted(cdf) {
		t.Fatal("ECDF not monotone")
	}
	if cdf[0] != 0 && cdf[0] > 0.05 {
		t.Errorf("left tail %v", cdf[0])
	}
	if cdf[len(cdf)-1] != 1 {
		t.Errorf("right tail %v want 1", cdf[len(cdf)-1])
	}
}

func TestQuantilePropertyBetweenMinMax(t *testing.T) {
	r := NewRNG(106)
	err := quick.Check(func(seed uint32) bool {
		rr := NewRNG(uint64(seed))
		n := rr.Intn(50) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rr.Norm()
		}
		q := r.Float64()
		v := Quantile(xs, q)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return v >= lo && v <= hi
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestLogNormalMoments(t *testing.T) {
	r := NewRNG(107)
	l := LogNormal{Mu: 0, Sigma: 0.5}
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += l.Sample(r)
	}
	want := math.Exp(0.125) // exp(mu + sigma^2/2)
	if mean := sum / n; math.Abs(mean-want) > 0.02 {
		t.Fatalf("lognormal mean %v want %v", mean, want)
	}
}
