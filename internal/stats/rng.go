// Package stats provides the random number generation, probability
// distributions and summary statistics used throughout the epidemiological
// workflow suite.
//
// All stochastic components in this repository draw from an explicit *RNG so
// that every experiment is reproducible given a seed, independent of
// goroutine scheduling. The generator is xoshiro256** seeded via splitmix64,
// the combination recommended by Blackman & Vigna; it is small, fast, and
// passes BigCrush.
package stats

import (
	"fmt"
	"math"
)

// RNG is a deterministic pseudo-random number generator (xoshiro256**).
// It is not safe for concurrent use; use Split to derive independent
// streams for parallel workers.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances a 64-bit state and returns a well-mixed output.
// It is used for seeding and for deriving independent streams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from the given seed. Distinct seeds give
// independent streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed resets the generator to the stream of the given seed, producing
// exactly the sequence of NewRNG(seed). It lets hot loops hold one RNG
// value and re-key it per (node, tick) without a heap allocation.
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Seeded returns a value-type generator seeded like NewRNG(seed). The
// value form lives on the caller's stack, so per-event keyed streams
// (the simulator draws one per node per tick) cost no allocation.
func Seeded(seed uint64) RNG {
	var r RNG
	r.Reseed(seed)
	return r
}

// First64 returns the first Uint64 of the stream Seeded(seed) without
// materializing the generator. xoshiro256**'s first output depends only
// on s[1] (the second splitmix64 output), and the all-zero reseed guard
// adjusts s[0] only, so two splitmix64 steps suffice. Hot paths that
// usually need just one draw use this, and fall back to Seeded — whose
// first Uint64 returns this same value — when more draws are required.
func First64(seed uint64) uint64 {
	sm := seed
	splitmix64(&sm)
	return rotl(splitmix64(&sm)*5, 7) * 9
}

// FirstFloat64 returns the first Float64 of the stream Seeded(seed); see
// First64.
func FirstFloat64(seed uint64) float64 {
	return float64(First64(seed)>>11) * (1.0 / (1 << 53))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives a new generator whose stream is independent of the parent's
// subsequent output. It is the supported way to hand RNGs to parallel
// workers: split once per worker in a deterministic order.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// State returns the generator's internal xoshiro256** state, positioned
// mid-stream. Together with SetState it lets simulation checkpoints resume
// an RNG exactly where it left off.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState restores a state previously obtained from State. The all-zero
// state is invalid for xoshiro and is rejected.
func (r *RNG) SetState(s [4]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return fmt.Errorf("stats: all-zero RNG state")
	}
	r.s = s
	return nil
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n)) // negligible bias for n << 2^64
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Norm returns a standard normal variate (polar Marsaglia method).
func (r *RNG) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Normal returns a normal variate with the given mean and standard
// deviation.
func (r *RNG) Normal(mean, sd float64) float64 {
	return mean + sd*r.Norm()
}

// TruncNormal samples a normal(mean, sd) truncated to [lo, hi] by rejection.
// It falls back to clamping after a bounded number of rejections so that
// pathological bounds cannot stall a simulation.
func (r *RNG) TruncNormal(mean, sd, lo, hi float64) float64 {
	if lo > hi {
		lo, hi = hi, lo
	}
	for i := 0; i < 64; i++ {
		x := r.Normal(mean, sd)
		if x >= lo && x <= hi {
			return x
		}
	}
	return math.Min(math.Max(mean, lo), hi)
}

// Exp returns an exponential variate with the given rate.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exp with non-positive rate")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Gamma returns a gamma variate with the given shape and scale
// (Marsaglia–Tsang method).
func (r *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("stats: Gamma with non-positive parameter")
	}
	if shape < 1 {
		// Boost: gamma(a) = gamma(a+1) * U^(1/a)
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Beta returns a beta(a, b) variate.
func (r *RNG) Beta(a, b float64) float64 {
	x := r.Gamma(a, 1)
	y := r.Gamma(b, 1)
	return x / (x + y)
}

// Poisson returns a Poisson variate with the given mean. For large means it
// uses the normal approximation, which is adequate for count synthesis.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		n := int(math.Round(r.Normal(mean, math.Sqrt(mean))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Binomial returns a binomial(n, p) variate.
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// Normal approximation when cheap and accurate.
	if float64(n)*p > 32 && float64(n)*(1-p) > 32 {
		mean := float64(n) * p
		sd := math.Sqrt(mean * (1 - p))
		k := int(math.Round(r.Normal(mean, sd)))
		if k < 0 {
			k = 0
		}
		if k > n {
			k = n
		}
		return k
	}
	k := 0
	for i := 0; i < n; i++ {
		if r.Float64() < p {
			k++
		}
	}
	return k
}

// LogNormal returns exp(Normal(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n elements using the provided swap
// function (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns an index in [0, len(weights)) chosen with probability
// proportional to the weights. Zero or negative weights are never chosen;
// if all weights are non-positive a uniform index is returned.
func (r *RNG) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
