package stats

import (
	"math"
	"testing"
)

// Tests for Dist wrappers whose behaviour otherwise only flows through
// other packages.

func TestNormalDistSample(t *testing.T) {
	r := NewRNG(200)
	n := Normal{Mean: 10, SD: 2}
	const k = 50000
	var sum float64
	for i := 0; i < k; i++ {
		sum += n.Sample(r)
	}
	if m := sum / k; math.Abs(m-10) > 0.05 {
		t.Fatalf("normal dist mean %v", m)
	}
}

func TestGammaDistSampleWrapper(t *testing.T) {
	r := NewRNG(201)
	g := Gamma{Shape: 2, Rate: 4} // mean 0.5
	const k = 50000
	var sum float64
	for i := 0; i < k; i++ {
		x := g.Sample(r)
		if x <= 0 {
			t.Fatal("non-positive gamma sample")
		}
		sum += x
	}
	if m := sum / k; math.Abs(m-0.5) > 0.02 {
		t.Fatalf("gamma dist mean %v", m)
	}
}

func TestTruncNormalDistWrapper(t *testing.T) {
	r := NewRNG(202)
	d := TruncNormal{Mean: 5, SD: 2, Lo: 3, Hi: 7}
	for i := 0; i < 5000; i++ {
		x := d.Sample(r)
		if x < 3 || x > 7 {
			t.Fatalf("trunc sample %v out of bounds", x)
		}
	}
	if !math.IsInf(d.LogPDF(2), -1) || !math.IsInf(d.LogPDF(8), -1) {
		t.Fatal("logpdf outside bounds should be -Inf")
	}
	if d.LogPDF(5) <= d.LogPDF(6.5) {
		t.Fatal("logpdf should peak at the mean")
	}
	if (TruncNormal{Mean: 0, SD: 0, Lo: -1, Hi: 1}).LogPDF(0) != math.Inf(-1) {
		t.Fatal("zero-sd logpdf should be -Inf")
	}
}

func TestNormalLogPDFBadSD(t *testing.T) {
	if !math.IsInf((Normal{Mean: 0, SD: 0}).LogPDF(1), -1) {
		t.Fatal("zero-sd normal should be -Inf")
	}
}

func TestLogNormalLogPDF(t *testing.T) {
	l := LogNormal{Mu: 0, Sigma: 1}
	if !math.IsInf(l.LogPDF(0), -1) || !math.IsInf(l.LogPDF(-1), -1) {
		t.Fatal("lognormal logpdf at non-positive x should be -Inf")
	}
	// Density integrates to ≈1 on (0, 20).
	sum := 0.0
	const steps = 200000
	for i := 1; i < steps; i++ {
		x := float64(i) * 20 / steps
		sum += math.Exp(l.LogPDF(x)) * 20 / steps
	}
	if math.Abs(sum-1) > 0.01 {
		t.Fatalf("lognormal density integrates to %v", sum)
	}
}

func TestStdDevWrapper(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	want := math.Sqrt(32.0 / 7.0)
	if got := StdDev(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("stddev %v want %v", got, want)
	}
}

func TestMedianWrapper(t *testing.T) {
	if Median([]float64{5, 1, 3}) != 3 {
		t.Fatal("median wrong")
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRNG(203)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		if seen[v] {
			t.Fatal("shuffle duplicated an element")
		}
		seen[v] = true
	}
	// Shuffling actually permutes (probability of identity is 1/8!).
	identity := true
	for i, v := range xs {
		if v != i {
			identity = false
		}
	}
	if identity {
		t.Log("shuffle returned identity (possible but unlikely)")
	}
}

func TestUniformCDFEdges(t *testing.T) {
	cdf := UniformCDF(2, 4)
	if cdf(1) != 0 || cdf(5) != 1 || cdf(3) != 0.5 {
		t.Fatal("uniform cdf edges wrong")
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	NewRNG(1).Exp(0)
}

func TestGammaPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma(0, 1) did not panic")
		}
	}()
	NewRNG(1).Gamma(0, 1)
}
