package stats

import (
	"fmt"
	"math"
	"sort"
)

// Dist is a univariate distribution that can be sampled and whose log
// density can be evaluated. It is the currency of the MCMC priors and of
// the dwell-time distributions in the disease model.
type Dist interface {
	Sample(r *RNG) float64
	LogPDF(x float64) float64
}

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct {
	Lo, Hi float64
}

// Sample draws a uniform variate.
func (u Uniform) Sample(r *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// LogPDF returns the log density, -Inf outside the support.
func (u Uniform) LogPDF(x float64) float64 {
	if x < u.Lo || x > u.Hi || u.Hi <= u.Lo {
		return math.Inf(-1)
	}
	return -math.Log(u.Hi - u.Lo)
}

// Normal is the normal distribution.
type Normal struct {
	Mean, SD float64
}

// Sample draws a normal variate.
func (n Normal) Sample(r *RNG) float64 { return r.Normal(n.Mean, n.SD) }

// LogPDF returns the log density.
func (n Normal) LogPDF(x float64) float64 {
	if n.SD <= 0 {
		return math.Inf(-1)
	}
	z := (x - n.Mean) / n.SD
	return -0.5*z*z - math.Log(n.SD) - 0.5*math.Log(2*math.Pi)
}

// Gamma is the gamma distribution with shape a and rate b (mean a/b).
type Gamma struct {
	Shape, Rate float64
}

// Sample draws a gamma variate.
func (g Gamma) Sample(r *RNG) float64 { return r.Gamma(g.Shape, 1/g.Rate) }

// LogPDF returns the log density.
func (g Gamma) LogPDF(x float64) float64 {
	if x <= 0 || g.Shape <= 0 || g.Rate <= 0 {
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(g.Shape)
	return g.Shape*math.Log(g.Rate) - lg + (g.Shape-1)*math.Log(x) - g.Rate*x
}

// Beta is the beta distribution.
type Beta struct {
	A, B float64
}

// Sample draws a beta variate.
func (b Beta) Sample(r *RNG) float64 { return r.Beta(b.A, b.B) }

// LogPDF returns the log density.
func (b Beta) LogPDF(x float64) float64 {
	if x <= 0 || x >= 1 || b.A <= 0 || b.B <= 0 {
		return math.Inf(-1)
	}
	la, _ := math.Lgamma(b.A)
	lb, _ := math.Lgamma(b.B)
	lab, _ := math.Lgamma(b.A + b.B)
	return (b.A-1)*math.Log(x) + (b.B-1)*math.Log(1-x) + lab - la - lb
}

// LogNormal is the log-normal distribution parameterized by the mean and sd
// of the underlying normal.
type LogNormal struct {
	Mu, Sigma float64
}

// Sample draws a log-normal variate.
func (l LogNormal) Sample(r *RNG) float64 { return r.LogNormal(l.Mu, l.Sigma) }

// LogPDF returns the log density.
func (l LogNormal) LogPDF(x float64) float64 {
	if x <= 0 || l.Sigma <= 0 {
		return math.Inf(-1)
	}
	z := (math.Log(x) - l.Mu) / l.Sigma
	return -0.5*z*z - math.Log(x*l.Sigma) - 0.5*math.Log(2*math.Pi)
}

// Discrete is a distribution over the values Vals with probabilities Probs.
// It is used for the discrete dwell-time distributions of Table III (e.g.
// Symptomatic → Attended: {1: 0.175, 2: 0.175, ...}).
type Discrete struct {
	Vals  []float64
	Probs []float64
}

// NewDiscrete builds a Discrete distribution and normalizes the weights.
// It returns an error if the inputs are mismatched or the total weight is
// not positive.
func NewDiscrete(vals, probs []float64) (Discrete, error) {
	if len(vals) != len(probs) || len(vals) == 0 {
		return Discrete{}, fmt.Errorf("stats: discrete needs equal, non-empty vals/probs (got %d, %d)", len(vals), len(probs))
	}
	total := 0.0
	for _, p := range probs {
		if p < 0 {
			return Discrete{}, fmt.Errorf("stats: negative probability %g", p)
		}
		total += p
	}
	if total <= 0 {
		return Discrete{}, fmt.Errorf("stats: discrete weights sum to %g", total)
	}
	norm := make([]float64, len(probs))
	for i, p := range probs {
		norm[i] = p / total
	}
	return Discrete{Vals: append([]float64(nil), vals...), Probs: norm}, nil
}

// Sample draws one of the values.
func (d Discrete) Sample(r *RNG) float64 { return d.Vals[r.Choice(d.Probs)] }

// LogPDF returns log P(X = x), -Inf for values outside the support.
func (d Discrete) LogPDF(x float64) float64 {
	for i, v := range d.Vals {
		if v == x {
			return math.Log(d.Probs[i])
		}
	}
	return math.Inf(-1)
}

// Fixed is a degenerate distribution concentrated at V. Table III expresses
// several dwell times as fixed values.
type Fixed struct {
	V float64
}

// Sample returns the fixed value.
func (f Fixed) Sample(r *RNG) float64 { return f.V }

// LogPDF returns 0 at the point mass and -Inf elsewhere.
func (f Fixed) LogPDF(x float64) float64 {
	if x == f.V {
		return 0
	}
	return math.Inf(-1)
}

// TruncNormal is a normal truncated to positive values, rounded use is left
// to the caller. Table III dwell times given as mean/sd pairs are sampled
// from this.
type TruncNormal struct {
	Mean, SD, Lo, Hi float64
}

// Sample draws a truncated normal variate.
func (t TruncNormal) Sample(r *RNG) float64 { return r.TruncNormal(t.Mean, t.SD, t.Lo, t.Hi) }

// LogPDF returns the (unnormalized) log density within the truncation
// bounds. The normalization constant is omitted because the MCMC use sites
// only need densities up to proportionality at fixed bounds.
func (t TruncNormal) LogPDF(x float64) float64 {
	if x < t.Lo || x > t.Hi || t.SD <= 0 {
		return math.Inf(-1)
	}
	z := (x - t.Mean) / t.SD
	return -0.5 * z * z
}

// NormCDF returns the standard normal CDF at x.
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormQuantile returns the standard normal quantile (Acklam's algorithm,
// accurate to ~1e-9, ample for plotting bands).
func NormQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the rational approximations.
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const plow = 0.02425
	var q, r float64
	switch {
	case p < plow:
		q = math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q = p - 0.5
		r = q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q = math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-th quantile of xs (linear interpolation between
// order statistics). It copies and sorts the input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return sortedQuantile(s, q)
}

// Quantiles returns multiple quantiles of xs with one sort.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for i, q := range qs {
		out[i] = sortedQuantile(s, q)
	}
	return out
}

func sortedQuantile(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Correlation returns the Pearson correlation of xs and ys. It panics if the
// lengths differ and returns 0 when either series is constant.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: correlation length mismatch")
	}
	if len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// ECDF returns the empirical CDF evaluated at each of the given points.
func ECDF(sample []float64, at []float64) []float64 {
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	out := make([]float64, len(at))
	for i, x := range at {
		out[i] = float64(sort.SearchFloat64s(s, math.Nextafter(x, math.Inf(1)))) / float64(len(s))
	}
	return out
}
