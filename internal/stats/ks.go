package stats

import (
	"math"
	"sort"
)

// KSStatistic returns the one-sample Kolmogorov–Smirnov statistic of the
// sample against the reference CDF.
func KSStatistic(sample []float64, cdf func(float64) float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	n := float64(len(s))
	max := 0.0
	for i, x := range s {
		f := cdf(x)
		// Compare against the empirical CDF just before and at x.
		dPlus := (float64(i)+1)/n - f
		dMinus := f - float64(i)/n
		if dPlus > max {
			max = dPlus
		}
		if dMinus > max {
			max = dMinus
		}
	}
	return max
}

// KSCritical returns the approximate critical value of the KS statistic at
// the given significance level (standard asymptotic formula; alpha in
// {0.10, 0.05, 0.01} uses the tabulated coefficients).
func KSCritical(n int, alpha float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	c := 1.358 // alpha = 0.05
	switch {
	case alpha >= 0.10:
		c = 1.224
	case alpha >= 0.05:
		c = 1.358
	default:
		c = 1.628
	}
	return c / math.Sqrt(float64(n))
}

// KSTestNormal reports whether the sample is consistent with
// Normal(mean, sd) at the given significance level.
func KSTestNormal(sample []float64, mean, sd, alpha float64) bool {
	stat := KSStatistic(sample, func(x float64) float64 {
		return NormCDF((x - mean) / sd)
	})
	return stat <= KSCritical(len(sample), alpha)
}

// ExpCDF returns the CDF of an exponential with the given rate.
func ExpCDF(rate float64) func(float64) float64 {
	return func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return 1 - math.Exp(-rate*x)
	}
}

// UniformCDF returns the CDF of Uniform(lo, hi).
func UniformCDF(lo, hi float64) func(float64) float64 {
	return func(x float64) float64 {
		switch {
		case x <= lo:
			return 0
		case x >= hi:
			return 1
		default:
			return (x - lo) / (hi - lo)
		}
	}
}
