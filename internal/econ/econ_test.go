package econ

import (
	"testing"

	"repro/internal/disease"
)

func TestCostApplication(t *testing.T) {
	c := CostSchedule{MedicalAttention: 100, HospitalPerDay: 1000, VentilatorPerDay: 5000, Death: 20000}
	tally := Tally{AttendedCases: 10, HospitalDays: 3, VentilatorDays: 2, Deaths: 1}
	want := 10*100.0 + 3*1000 + 2*5000 + 1*20000
	if got := c.Cost(tally); got != want {
		t.Fatalf("cost %v want %v", got, want)
	}
	if DefaultCosts().Cost(Tally{}) != 0 {
		t.Fatal("empty tally should cost nothing")
	}
}

func TestTallyAdd(t *testing.T) {
	a := Tally{AttendedCases: 1, HospitalDays: 2, VentilatorDays: 3, Deaths: 4}
	a.Add(Tally{AttendedCases: 10, HospitalDays: 20, VentilatorDays: 30, Deaths: 40})
	if a.AttendedCases != 11 || a.HospitalDays != 22 || a.VentilatorDays != 33 || a.Deaths != 44 {
		t.Fatalf("add wrong: %+v", a)
	}
}

func TestTallyFromSeries(t *testing.T) {
	days := 3
	daily := make([][disease.NumStates]int32, days)
	current := make([][disease.NumStates]int32, days)
	daily[0][disease.Attended] = 5
	daily[1][disease.AttendedH] = 2
	daily[1][disease.AttendedD] = 1
	daily[2][disease.Dead] = 1
	current[0][disease.Hospitalized] = 4
	current[1][disease.Hospitalized] = 6
	current[1][disease.HospitalizedD] = 1
	current[2][disease.Ventilated] = 2
	current[2][disease.VentilatedD] = 1
	tally, err := TallyFromSeries(daily, current)
	if err != nil {
		t.Fatal(err)
	}
	if tally.AttendedCases != 8 {
		t.Errorf("attended %d want 8", tally.AttendedCases)
	}
	if tally.HospitalDays != 11 {
		t.Errorf("hospital days %d want 11", tally.HospitalDays)
	}
	if tally.VentilatorDays != 3 {
		t.Errorf("vent days %d want 3", tally.VentilatorDays)
	}
	if tally.Deaths != 1 {
		t.Errorf("deaths %d want 1", tally.Deaths)
	}
}

func TestTallyFromSeriesMismatch(t *testing.T) {
	if _, err := TallyFromSeries(make([][disease.NumStates]int32, 2), make([][disease.NumStates]int32, 3)); err == nil {
		t.Fatal("mismatched horizons accepted")
	}
}

func TestCompareScenariosSorted(t *testing.T) {
	c := DefaultCosts()
	out := CompareScenarios(c, map[string]Tally{
		"no-npi":    {AttendedCases: 100, HospitalDays: 50, Deaths: 5},
		"lockdown":  {AttendedCases: 20, HospitalDays: 8, Deaths: 1},
		"mid-level": {AttendedCases: 60, HospitalDays: 25, Deaths: 3},
	})
	if len(out) != 3 {
		t.Fatalf("%d scenarios", len(out))
	}
	if out[0].Scenario != "lockdown" || out[1].Scenario != "mid-level" || out[2].Scenario != "no-npi" {
		t.Fatalf("not sorted by name: %+v", out)
	}
	// Fewer cases must cost less under a fixed schedule.
	if out[0].Dollars >= out[2].Dollars {
		t.Fatal("lockdown scenario should cost less than no-NPI")
	}
}

func TestPerCapitaScaling(t *testing.T) {
	if PerCapita(100, 1000) != 100000 {
		t.Fatal("scale-up wrong")
	}
	if PerCapita(100, 0) != 100 {
		t.Fatal("zero scale should be identity")
	}
}
