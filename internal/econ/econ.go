// Package econ implements the medical-cost model of the paper's first case
// study ("Medical costs of COVID-19", following Chen et al. [9]): per-case
// costs by level of care, applied to the aggregate health-state counts a
// workflow produces, yielding per-scenario total medical costs for the
// factorial NPI designs.
package econ

import (
	"fmt"

	"repro/internal/disease"
)

// CostSchedule gives the per-event and per-day unit costs in dollars.
// Defaults follow the published estimates the paper's companion study uses
// (FAIR Health / HealthCare Cost Institute 2020 figures).
type CostSchedule struct {
	// MedicalAttention is the one-time cost of an attended (outpatient)
	// case.
	MedicalAttention float64
	// HospitalPerDay is the daily cost of a non-ICU hospital bed.
	HospitalPerDay float64
	// VentilatorPerDay is the daily cost of ICU care with ventilation.
	VentilatorPerDay float64
	// Death adds end-of-life intensive care costs.
	Death float64
}

// DefaultCosts returns the 2020 estimates.
func DefaultCosts() CostSchedule {
	return CostSchedule{
		MedicalAttention: 500,
		HospitalPerDay:   4000,
		VentilatorPerDay: 10000,
		Death:            15000,
	}
}

// Tally is the input to the cost model: event counts and person-days by
// care level, produced by aggregating simulation output.
type Tally struct {
	AttendedCases  int64 // entries into any Attended state
	HospitalDays   int64 // person-days in Hospitalized states
	VentilatorDays int64 // person-days in Ventilated states
	Deaths         int64
}

// Add accumulates another tally.
func (t *Tally) Add(o Tally) {
	t.AttendedCases += o.AttendedCases
	t.HospitalDays += o.HospitalDays
	t.VentilatorDays += o.VentilatorDays
	t.Deaths += o.Deaths
}

// Cost applies the schedule to the tally.
func (c CostSchedule) Cost(t Tally) float64 {
	return float64(t.AttendedCases)*c.MedicalAttention +
		float64(t.HospitalDays)*c.HospitalPerDay +
		float64(t.VentilatorDays)*c.VentilatorPerDay +
		float64(t.Deaths)*c.Death
}

// TallyFromSeries builds a tally from daily new-entry counts and current
// occupancy per state — the two series a Result or CountyAggregator holds.
// daily[d][st] are entries into st on day d; current[d][st] is end-of-day
// occupancy.
func TallyFromSeries(daily, current [][disease.NumStates]int32) (Tally, error) {
	if len(daily) != len(current) {
		return Tally{}, fmt.Errorf("econ: daily (%d) and current (%d) horizons differ", len(daily), len(current))
	}
	var t Tally
	for d := range daily {
		t.AttendedCases += int64(daily[d][disease.Attended]) +
			int64(daily[d][disease.AttendedH]) + int64(daily[d][disease.AttendedD])
		t.HospitalDays += int64(current[d][disease.Hospitalized]) + int64(current[d][disease.HospitalizedD])
		t.VentilatorDays += int64(current[d][disease.Ventilated]) + int64(current[d][disease.VentilatedD])
		t.Deaths += int64(daily[d][disease.Dead])
	}
	return t, nil
}

// ScenarioCost names a scenario's total cost for reporting.
type ScenarioCost struct {
	Scenario string
	Tally    Tally
	Dollars  float64
}

// CompareScenarios costs a set of scenario tallies with one schedule.
func CompareScenarios(c CostSchedule, tallies map[string]Tally) []ScenarioCost {
	out := make([]ScenarioCost, 0, len(tallies))
	for name, t := range tallies {
		out = append(out, ScenarioCost{Scenario: name, Tally: t, Dollars: c.Cost(t)})
	}
	// Deterministic order: by name.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Scenario < out[j-1].Scenario; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// PerCapita scales a dollar figure from the simulation's population scale
// back to real-population terms: costs computed on a 1:Scale synthetic
// population multiply by Scale.
func PerCapita(dollars float64, scale int) float64 {
	if scale <= 0 {
		scale = 1
	}
	return dollars * float64(scale)
}
