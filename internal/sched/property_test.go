// Property-based tests over random task sets: whatever the instance, the
// packing heuristics must respect node capacity, the per-region DB bounds
// and the window deadline, and first-fit must never pack worse than
// next-fit. The file lives in the external test package so it can drive the
// schedules through the cluster executors as well.
package sched_test

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sched"
	"repro/internal/stats"
)

// randomInstance draws a workload-shaped random instance: a task set over a
// random subset of regions with small/medium/large node classes, plus
// constraints with random node count and per-region DB bounds.
func randomInstance(r *stats.RNG) ([]sched.Task, sched.Constraints) {
	regions := []string{"CA", "TX", "VA", "NC", "MT", "WY", "RI", "OH"}
	nodesFor := map[string]int{"CA": 6, "TX": 6, "VA": 4, "NC": 4, "MT": 2, "WY": 2, "RI": 2, "OH": 4}
	totalNodes := 8 + int(r.Uint64()%57) // 8..64
	n := 1 + int(r.Uint64()%120)
	var tasks []sched.Task
	for i := 0; i < n; i++ {
		reg := regions[r.Intn(len(regions))]
		nodes := nodesFor[reg]
		if nodes > totalNodes {
			nodes = totalNodes
		}
		tasks = append(tasks, sched.Task{
			Region: reg, Cell: i, Replicate: int(r.Uint64() % 5),
			Nodes: nodes,
			Time:  10 + 2000*r.Float64(),
		})
	}
	bounds := map[string]int{}
	for _, reg := range regions {
		if r.Float64() < 0.7 { // some regions stay unbounded
			bounds[reg] = 1 + int(r.Uint64()%4)
		}
	}
	return tasks, sched.Constraints{TotalNodes: totalNodes, DBBound: bounds}
}

func TestPackingPropertiesRandomInstances(t *testing.T) {
	const trials = 300
	r := stats.NewRNG(2026)
	for trial := 0; trial < trials; trial++ {
		tasks, c := randomInstance(r)
		ff, err := sched.FFDTDC(tasks, c)
		if err != nil {
			t.Fatalf("trial %d: FFDTDC: %v", trial, err)
		}
		nf, err := sched.NFDTDC(tasks, c)
		if err != nil {
			t.Fatalf("trial %d: NFDTDC: %v", trial, err)
		}
		// Both packings place every task exactly once under capacity and DB
		// bounds.
		if err := ff.Validate(tasks, c); err != nil {
			t.Fatalf("trial %d: FFDT-DC invalid: %v", trial, err)
		}
		if err := nf.Validate(tasks, c); err != nil {
			t.Fatalf("trial %d: NFDT-DC invalid: %v", trial, err)
		}
		// First-fit never packs worse than next-fit (it can only reuse
		// earlier levels that next-fit already closed).
		if ff.Makespan() > nf.Makespan()+1e-9 {
			t.Fatalf("trial %d: FFDT-DC makespan %g exceeds NFDT-DC %g",
				trial, ff.Makespan(), nf.Makespan())
		}
	}
}

func TestExecutionPropertiesRandomInstances(t *testing.T) {
	const trials = 120
	r := stats.NewRNG(4051)
	for trial := 0; trial < trials; trial++ {
		tasks, c := randomInstance(r)
		ff, err := sched.FFDTDC(tasks, c)
		if err != nil {
			t.Fatal(err)
		}
		nf, err := sched.NFDTDC(tasks, c)
		if err != nil {
			t.Fatal(err)
		}
		// Deadline at half the level-sync makespan forces drops on most
		// instances; zero means unlimited. Both regimes must validate.
		full := cluster.ExecuteLevelSync(nf, 0)
		for _, deadline := range []float64{0, full.Makespan / 2} {
			res, err := cluster.ExecuteBackfill(cluster.FlattenSchedule(ff), c, deadline)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if err := cluster.ValidateExecution(res, c, deadline); err != nil {
				t.Fatalf("trial %d deadline %g: backfill: %v", trial, deadline, err)
			}
			if len(res.Records)+len(res.Unstarted) != len(tasks) {
				t.Fatalf("trial %d: %d + %d != %d tasks",
					trial, len(res.Records), len(res.Unstarted), len(tasks))
			}
			lv := cluster.ExecuteLevelSync(nf, deadline)
			if err := cluster.ValidateExecution(lv, c, deadline); err != nil {
				t.Fatalf("trial %d deadline %g: level-sync: %v", trial, deadline, err)
			}
		}
		// Work conservation: backfill completes everything with no deadline
		// and performs exactly the schedule's node-seconds.
		res, _ := cluster.ExecuteBackfill(cluster.FlattenSchedule(ff), c, 0)
		if got, want := res.BusyNodeSeconds, ff.Work(); !approxEq(got, want) {
			t.Fatalf("trial %d: executed %g node-seconds, schedule has %g", trial, got, want)
		}
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if b > 1 {
		scale = b
	}
	return d <= 1e-9*scale
}

// Example-style sanity check that the random generator itself is
// deterministic, so failures reproduce.
func TestRandomInstanceDeterministic(t *testing.T) {
	a, ca := randomInstance(stats.NewRNG(1))
	b, cb := randomInstance(stats.NewRNG(1))
	if fmt.Sprint(a, ca) != fmt.Sprint(b, cb) {
		t.Fatal("randomInstance not deterministic per seed")
	}
}
