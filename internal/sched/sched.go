// Package sched implements the workflow-mapping machinery of Section V:
// the ⟨cell, region⟩ task model, the DB-access-constrained workflow mapping
// problem (DB-WMP), the r-relaxed coloring formulation of the database
// constraint, and the two level-oriented packing heuristics the paper
// evaluates — Next-Fit Decreasing Time with database constraints (NFDT-DC)
// and First-Fit Decreasing Time with database constraints (FFDT-DC).
//
// The geometry follows the paper's 2-D strip-packing view: processors on
// the X axis, time on the Y axis; tasks are placed left to right in rows
// forming levels, each level's height set by its slowest task, and the next
// level starting when the previous one completes. The database constraint
// bounds how many tasks of one region may run simultaneously — i.e. share a
// level.
package sched

import (
	"fmt"
	"sort"
)

// Task is one atomic ⟨cell, region⟩ job: all replicates of one cell of one
// region's statistical design, run as a unit.
type Task struct {
	Region    string
	Cell      int
	Replicate int
	// Nodes is the number of compute nodes the task occupies (the paper
	// categorizes regions as small=2, medium=4, large=6 nodes).
	Nodes int
	// Time is the empirical mean running time t(T[c,r]), in seconds.
	Time float64
}

// Constraints describes the target machine and database bounds.
type Constraints struct {
	// TotalNodes is the width of the strip (allocated compute nodes).
	TotalNodes int
	// DBBound[r] is B(T[r]): the maximum number of region-r tasks that
	// may run simultaneously. Regions absent from the map are unbounded.
	DBBound map[string]int
}

// Level is one row of the strip: its tasks run concurrently, and the level
// completes when its slowest task does.
type Level struct {
	Tasks     []Task
	UsedNodes int
	Height    float64
	perRegion map[string]int
}

// fits reports whether t can join the level under the constraints.
func (l *Level) fits(t Task, c Constraints) bool {
	if l.UsedNodes+t.Nodes > c.TotalNodes {
		return false
	}
	if bound, ok := c.DBBound[t.Region]; ok && l.perRegion[t.Region] >= bound {
		return false
	}
	return true
}

func (l *Level) add(t Task) {
	l.Tasks = append(l.Tasks, t)
	l.UsedNodes += t.Nodes
	if t.Time > l.Height {
		l.Height = t.Time
	}
	if l.perRegion == nil {
		l.perRegion = map[string]int{}
	}
	l.perRegion[t.Region]++
}

// Schedule is a packed strip.
type Schedule struct {
	Levels     []Level
	TotalNodes int
}

// Makespan returns the completion time of the last level.
func (s *Schedule) Makespan() float64 {
	total := 0.0
	for _, l := range s.Levels {
		total += l.Height
	}
	return total
}

// Work returns the total node-seconds of useful computation.
func (s *Schedule) Work() float64 {
	w := 0.0
	for _, l := range s.Levels {
		for _, t := range l.Tasks {
			w += t.Time * float64(t.Nodes)
		}
	}
	return w
}

// Utilization returns the paper's empirical efficiency EC: total busy
// node-time divided by (total nodes × makespan).
func (s *Schedule) Utilization() float64 {
	m := s.Makespan()
	if m == 0 || s.TotalNodes == 0 {
		return 0
	}
	return s.Work() / (m * float64(s.TotalNodes))
}

// NumTasks returns the number of packed tasks.
func (s *Schedule) NumTasks() int {
	n := 0
	for _, l := range s.Levels {
		n += len(l.Tasks)
	}
	return n
}

// StartTimes returns, for each task (in level order), its level start time;
// the cluster executor uses these to replay the packing.
func (s *Schedule) StartTimes() []ScheduledTask {
	var out []ScheduledTask
	start := 0.0
	for li, l := range s.Levels {
		for _, t := range l.Tasks {
			out = append(out, ScheduledTask{Task: t, Level: li, Start: start, End: start + t.Time})
		}
		start += l.Height
	}
	return out
}

// ScheduledTask is a task with its placement.
type ScheduledTask struct {
	Task  Task
	Level int
	Start float64
	End   float64
}

// Validate checks a schedule against the constraints: level widths, the
// per-level DB bound, and that every input task appears exactly once.
func (s *Schedule) Validate(tasks []Task, c Constraints) error {
	count := map[Task]int{}
	for _, t := range tasks {
		count[t]++
	}
	for li, l := range s.Levels {
		width := 0
		perRegion := map[string]int{}
		for _, t := range l.Tasks {
			width += t.Nodes
			perRegion[t.Region]++
			count[t]--
			if count[t] < 0 {
				return fmt.Errorf("sched: level %d contains unknown or duplicated task %+v", li, t)
			}
			if t.Time > l.Height {
				return fmt.Errorf("sched: level %d height %g below task time %g", li, l.Height, t.Time)
			}
		}
		if width > c.TotalNodes {
			return fmt.Errorf("sched: level %d width %d exceeds %d nodes", li, width, c.TotalNodes)
		}
		for r, n := range perRegion {
			if bound, ok := c.DBBound[r]; ok && n > bound {
				return fmt.Errorf("sched: level %d has %d tasks of region %s (bound %d)", li, n, r, bound)
			}
		}
	}
	for t, n := range count {
		if n != 0 {
			return fmt.Errorf("sched: task %+v scheduled %d times", t, 1-n)
		}
	}
	return nil
}

// sortDecreasing returns the tasks in non-increasing time order (ties by
// region then cell then replicate, for determinism). The time of a task is
// directly correlated with the size of its region's network, so this orders
// big states first — Step 2 of the paper's heuristic.
func sortDecreasing(tasks []Task) []Task {
	out := append([]Task(nil), tasks...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		if out[i].Region != out[j].Region {
			return out[i].Region < out[j].Region
		}
		if out[i].Cell != out[j].Cell {
			return out[i].Cell < out[j].Cell
		}
		return out[i].Replicate < out[j].Replicate
	})
	return out
}

// checkTasks rejects tasks that can never be placed.
func checkTasks(tasks []Task, c Constraints) error {
	if c.TotalNodes <= 0 {
		return fmt.Errorf("sched: non-positive node count %d", c.TotalNodes)
	}
	for _, t := range tasks {
		if t.Nodes <= 0 || t.Nodes > c.TotalNodes {
			return fmt.Errorf("sched: task %+v needs %d of %d nodes", t, t.Nodes, c.TotalNodes)
		}
		if t.Time < 0 {
			return fmt.Errorf("sched: negative task time %+v", t)
		}
		if bound, ok := c.DBBound[t.Region]; ok && bound <= 0 {
			return fmt.Errorf("sched: region %s has non-positive DB bound %d", t.Region, bound)
		}
	}
	return nil
}

// NFDTDC packs with Next-Fit Decreasing Time under database constraints:
// the next task (in non-increasing time) goes on the current level if it
// fits and the database constraint is satisfied; otherwise the current
// level is closed and a new one created. Without the DB constraint this is
// the classical NFDH with worst-case ratio 2.
func NFDTDC(tasks []Task, c Constraints) (*Schedule, error) {
	if err := checkTasks(tasks, c); err != nil {
		return nil, err
	}
	s := &Schedule{TotalNodes: c.TotalNodes}
	if len(tasks) == 0 {
		return s, nil
	}
	ordered := sortDecreasing(tasks)
	cur := &Level{}
	for _, t := range ordered {
		if !cur.fits(t, c) && len(cur.Tasks) > 0 {
			s.Levels = append(s.Levels, *cur)
			cur = &Level{}
		}
		cur.add(t)
	}
	if len(cur.Tasks) > 0 {
		s.Levels = append(s.Levels, *cur)
	}
	return s, nil
}

// FFDTDC packs with First-Fit Decreasing Time under database constraints:
// each task (in non-increasing time) is placed on the first existing level
// where it fits and the database constraint holds; a new level opens only
// when no level can accommodate it. Without the DB constraint this is FFDH
// with worst-case ratio 17/10.
func FFDTDC(tasks []Task, c Constraints) (*Schedule, error) {
	if err := checkTasks(tasks, c); err != nil {
		return nil, err
	}
	s := &Schedule{TotalNodes: c.TotalNodes}
	ordered := sortDecreasing(tasks)
	for _, t := range ordered {
		placed := false
		for li := range s.Levels {
			if s.Levels[li].fits(t, c) {
				s.Levels[li].add(t)
				placed = true
				break
			}
		}
		if !placed {
			var l Level
			l.add(t)
			s.Levels = append(s.Levels, l)
		}
	}
	return s, nil
}

// FIFO packs tasks in their given order with next-fit levels and no
// decreasing-time sort — the naive baseline for the scheduler ablation.
func FIFO(tasks []Task, c Constraints) (*Schedule, error) {
	if err := checkTasks(tasks, c); err != nil {
		return nil, err
	}
	s := &Schedule{TotalNodes: c.TotalNodes}
	if len(tasks) == 0 {
		return s, nil
	}
	cur := &Level{}
	for _, t := range tasks {
		if !cur.fits(t, c) && len(cur.Tasks) > 0 {
			s.Levels = append(s.Levels, *cur)
			cur = &Level{}
		}
		cur.add(t)
	}
	if len(cur.Tasks) > 0 {
		s.Levels = append(s.Levels, *cur)
	}
	return s, nil
}
