package sched

// This file provides the lower bounds the paper's worst-case guarantees are
// stated against: "Without the database constraints, the NFDT-DC and
// FFDT-DC algorithms have worst-case performance guarantees of 2 and 17/10
// respectively" — guarantees on makespan relative to the optimal strip
// height.

// MakespanLowerBound returns a lower bound on any schedule's makespan: the
// larger of the area bound (total node-seconds / strip width) and the
// longest single task.
func MakespanLowerBound(tasks []Task, totalNodes int) float64 {
	if totalNodes <= 0 {
		return 0
	}
	area := 0.0
	longest := 0.0
	for _, t := range tasks {
		area += t.Time * float64(t.Nodes)
		if t.Time > longest {
			longest = t.Time
		}
	}
	areaBound := area / float64(totalNodes)
	if longest > areaBound {
		return longest
	}
	return areaBound
}

// ApproxRatio returns the schedule's makespan over the lower bound —
// an upper bound on its true approximation ratio.
func ApproxRatio(s *Schedule, tasks []Task) float64 {
	lb := MakespanLowerBound(tasks, s.TotalNodes)
	if lb == 0 {
		return 1
	}
	return s.Makespan() / lb
}
