package sched

import (
	"repro/internal/stats"
	"repro/internal/synthpop"
)

// This file models the paper's nightly workload: the 3-level
// regions-cells-replicates hierarchy, the small/medium/large node
// categorization, and the empirical task-time model (time directly
// correlated with network size; interventions inflate it, Figure 7).

// NodesForRegion assigns the compute-node category of Section VI: the 51
// networks are divided into small (2 nodes), medium (4) and large (6) so
// that "jobs have sufficient memory to complete even the complex
// intervention scenarios".
func NodesForRegion(population int) int {
	switch {
	case population > 12_000_000:
		return 6
	case population > 4_000_000:
		return 4
	default:
		return 2
	}
}

// TimeModel predicts a task's running time from its region's scale, the
// node assignment and the intervention complexity factor. Figure 7 (top)
// shows time linear in network size at fixed processing units; Figure 8
// shows state runtimes from under 100 s to ≈1400 s. The defaults reproduce
// that range (California ≈ 900 s: 300 steps at ≈3 s each).
type TimeModel struct {
	// BaseSeconds is the fixed start-up cost (partition load, DB attach).
	BaseSeconds float64
	// SecondsPerPersonPerNode scales the per-tick work.
	SecondsPerPersonPerNode float64
	// InterventionFactor multiplies the variable part (1 = base case;
	// the paper's D2CT reaches ≈4, a 300% increase).
	InterventionFactor float64
	// NoiseSD is the lognormal sd of run-to-run variability (randomness
	// within the computation, triggered interventions, machine noise).
	NoiseSD float64
}

// DefaultTimeModel returns the calibrated defaults.
func DefaultTimeModel() TimeModel {
	return TimeModel{
		BaseSeconds:             60,
		SecondsPerPersonPerNode: 1.3e-4,
		InterventionFactor:      1,
		NoiseSD:                 0.08,
	}
}

// Mean returns t(T[c,r]), the empirical mean running time for a region.
func (tm TimeModel) Mean(population, nodes int) float64 {
	variable := tm.SecondsPerPersonPerNode * float64(population) / float64(nodes)
	f := tm.InterventionFactor
	if f <= 0 {
		f = 1
	}
	return tm.BaseSeconds + variable*f
}

// Sample returns one noisy realization of the running time.
func (tm TimeModel) Sample(population, nodes int, r *stats.RNG) float64 {
	m := tm.Mean(population, nodes)
	if tm.NoiseSD <= 0 {
		return m
	}
	return m * r.LogNormal(0, tm.NoiseSD)
}

// Workload builds the full ⟨cell, region⟩ task set of one night.
type Workload struct {
	// Cells is the number of cells per region; Replicates per cell.
	Cells, Replicates int
	// Regions restricts the workload (nil = all 51; the paper's VA-only
	// nights use a single region with many cells).
	Regions []synthpop.StateInfo
	// Time is the task-time model.
	Time TimeModel
	// GroupReplicates runs all replicates of a cell inside one task (the
	// paper groups "several cells into one to create jobs of appropriate
	// sizes"); when false, each replicate is its own task.
	GroupReplicates bool
	// MaxInterventionFactor spreads intervention complexity across the
	// cells of the factorial design: cell c gets a factor interpolated in
	// [1, MaxInterventionFactor] (Figure 7 bottom: D2CT reaches ≈4×).
	// Zero or one disables the spread.
	MaxInterventionFactor float64
}

// cellFactor interpolates the intervention factor for cell c of `cells`.
func (w Workload) cellFactor(c, cells int) float64 {
	if w.MaxInterventionFactor <= 1 || cells <= 1 {
		return 1
	}
	return 1 + (w.MaxInterventionFactor-1)*float64(c)/float64(cells-1)
}

// Tasks materializes the workload. Replicate-grouped tasks multiply the
// time by the replicate count; the per-task noise uses the provided RNG and
// is deterministic in task order.
func (w Workload) Tasks(r *stats.RNG) []Task {
	regions := w.Regions
	if regions == nil {
		regions = synthpop.States
	}
	cells := w.Cells
	if cells <= 0 {
		cells = 1
	}
	reps := w.Replicates
	if reps <= 0 {
		reps = 1
	}
	var out []Task
	for _, st := range regions {
		nodes := NodesForRegion(st.Population)
		for c := 0; c < cells; c++ {
			tm := w.Time
			tm.InterventionFactor = w.cellFactor(c, cells) * maxf(1, tm.InterventionFactor)
			if w.GroupReplicates {
				t := tm.Sample(st.Population, nodes, r) * float64(reps)
				out = append(out, Task{Region: st.Code, Cell: c, Replicate: -1, Nodes: nodes, Time: t})
				continue
			}
			for rep := 0; rep < reps; rep++ {
				out = append(out, Task{
					Region: st.Code, Cell: c, Replicate: rep,
					Nodes: nodes,
					Time:  tm.Sample(st.Population, nodes, r),
				})
			}
		}
	}
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// DefaultDBBounds gives every region the same simultaneous-connection
// bound B(T[r]).
func DefaultDBBounds(bound int) map[string]int {
	out := make(map[string]int, len(synthpop.States))
	for _, st := range synthpop.States {
		out[st.Code] = bound
	}
	return out
}
