package sched

import (
	"fmt"
	"sort"
)

// This file implements the r-relaxed coloring problem the paper introduces
// to model database-access conflicts: given a conflict graph G(V, E) and a
// number r, assign a color to every node such that no node shares its color
// with more than r of its neighbors. Colors correspond to time slots
// (levels); with r = 1 the problem degenerates to classical proper coloring.
//
// The paper's Step 1 decomposition — one database per region, making the
// conflict graph a disjoint union of per-region cliques — renders the
// coloring easy; the greedy solver below handles the general case for
// experimentation, and CliqueColoring the decomposed case exactly.

// RelaxedColoring greedily colors the graph (given as adjacency lists)
// such that every node has at most r same-colored neighbors. It returns
// the color per node (0-based). Nodes are processed in decreasing-degree
// order, the standard greedy heuristic.
func RelaxedColoring(adj [][]int, r int) ([]int, error) {
	n := len(adj)
	if r < 1 {
		return nil, fmt.Errorf("sched: relaxation r must be ≥ 1, got %d", r)
	}
	for u, nbrs := range adj {
		for _, v := range nbrs {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("sched: neighbor %d of %d out of range", v, u)
			}
			if v == u {
				return nil, fmt.Errorf("sched: self-loop at %d", u)
			}
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return len(adj[order[a]]) > len(adj[order[b]]) })

	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	for _, u := range order {
		// Count already-assigned neighbor colors.
		used := map[int]int{}
		for _, v := range adj[u] {
			if colors[v] >= 0 {
				used[colors[v]]++
			}
		}
		c := 0
		for {
			// A color is admissible for u if fewer than r neighbors have
			// it AND giving it to u would not push any same-colored
			// neighbor over its own budget.
			if used[c] < r && !wouldOverflow(adj, colors, u, c, r) {
				break
			}
			c++
		}
		colors[u] = c
	}
	return colors, nil
}

// wouldOverflow reports whether assigning color c to u pushes a neighbor v
// (already colored c) beyond r same-colored neighbors.
func wouldOverflow(adj [][]int, colors []int, u, c, r int) bool {
	for _, v := range adj[u] {
		if colors[v] != c {
			continue
		}
		same := 1 // u itself
		for _, w := range adj[v] {
			if w != u && colors[w] == c {
				same++
			}
		}
		if same > r {
			return true
		}
	}
	return false
}

// ValidateRelaxedColoring checks the r-relaxed property.
func ValidateRelaxedColoring(adj [][]int, colors []int, r int) error {
	for u, nbrs := range adj {
		same := 0
		for _, v := range nbrs {
			if colors[v] == colors[u] {
				same++
			}
		}
		if same > r {
			return fmt.Errorf("sched: node %d has %d same-colored neighbors (r=%d)", u, same, r)
		}
	}
	return nil
}

// NumColors returns the number of distinct colors used.
func NumColors(colors []int) int {
	seen := map[int]bool{}
	for _, c := range colors {
		seen[c] = true
	}
	return len(seen)
}

// CliqueColoring solves the decomposed per-region case exactly: a clique of
// size n under relaxation r needs ⌈n / r⌉... colors in the r-relaxed sense
// where each color class may hold at most r+1 mutually adjacent nodes (each
// member then has r same-colored neighbors). It returns the color of each
// of the n clique members.
func CliqueColoring(n, r int) ([]int, error) {
	if r < 1 || n < 0 {
		return nil, fmt.Errorf("sched: bad clique coloring args n=%d r=%d", n, r)
	}
	colors := make([]int, n)
	for i := 0; i < n; i++ {
		colors[i] = i / (r + 1)
	}
	return colors, nil
}
