// Fuzz targets for the two invariant-heavy surfaces of the scheduler: the
// r-relaxed coloring greedy (any simple graph, any r — a returned coloring
// must validate) and the pack → flatten → execute → validate round trip
// (arbitrary task sets must produce either an error or a valid execution,
// never a panic). Under plain `go test` these replay the seed corpus; run
// `go test -fuzz=FuzzRelaxedColoring ./internal/sched` to explore.
package sched_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sched"
)

// graphFromBytes decodes a simple undirected graph: node count from the
// first byte (capped), then byte pairs as edges. Self-loops are kept so the
// error path is exercised too; duplicates are removed (the conflict graphs
// of the paper are simple).
func graphFromBytes(data []byte) [][]int {
	if len(data) == 0 {
		return nil
	}
	n := int(data[0])%24 + 1
	adj := make([][]int, n)
	seen := map[[2]int]bool{}
	for i := 1; i+1 < len(data); i += 2 {
		u, v := int(data[i])%n, int(data[i+1])%n
		if u == v {
			adj[u] = append(adj[u], v) // self-loop: must be rejected
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	return adj
}

func FuzzRelaxedColoring(f *testing.F) {
	f.Add([]byte{5, 0, 1, 1, 2, 2, 3, 3, 4, 4, 0}, 1) // 5-cycle, proper coloring
	f.Add([]byte{8, 0, 1, 0, 2, 1, 2, 3, 4, 3, 5}, 2) // triangle + edge, r=2
	f.Add([]byte{3, 0, 0}, 1)                         // self-loop → error
	f.Add([]byte{6, 0, 1, 2, 3}, 0)                   // r < 1 → error
	f.Add([]byte{16, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 3)
	f.Fuzz(func(t *testing.T, data []byte, r int) {
		adj := graphFromBytes(data)
		colors, err := sched.RelaxedColoring(adj, r)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		if r < 1 {
			t.Fatalf("r=%d accepted", r)
		}
		if len(colors) != len(adj) {
			t.Fatalf("%d colors for %d nodes", len(colors), len(adj))
		}
		if err := sched.ValidateRelaxedColoring(adj, colors, r); err != nil {
			t.Fatalf("greedy produced invalid coloring: %v", err)
		}
	})
}

// tasksFromBytes decodes an arbitrary task set: 4 bytes per task. Times and
// node counts are left unclamped enough to hit the schedulers' validation
// paths (zero-node tasks, tasks wider than the machine).
func tasksFromBytes(data []byte) []sched.Task {
	regions := []string{"CA", "VA", "WY", "TX"}
	var tasks []sched.Task
	for i := 0; i+3 < len(data); i += 4 {
		tasks = append(tasks, sched.Task{
			Region:    regions[int(data[i])%len(regions)],
			Cell:      int(data[i+1]),
			Replicate: int(data[i]) % 3,
			Nodes:     int(data[i+2]) - 2, // may be ≤ 0 or oversized
			Time:      float64(int(data[i+3]) - 1),
		})
	}
	return tasks
}

func FuzzScheduleRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 4, 100, 1, 2, 6, 50, 2, 3, 3, 200}, uint8(16), uint8(2))
	f.Add([]byte{0, 0, 0, 0}, uint8(8), uint8(1))     // zero-node task
	f.Add([]byte{3, 9, 255, 255}, uint8(4), uint8(0)) // oversized task
	f.Add([]byte{1, 1, 3, 0, 1, 2, 3, 0}, uint8(6), uint8(3))
	f.Add([]byte{}, uint8(0), uint8(0)) // empty everything
	f.Fuzz(func(t *testing.T, data []byte, totalNodes, bound uint8) {
		tasks := tasksFromBytes(data)
		c := sched.Constraints{TotalNodes: int(totalNodes)}
		if bound > 0 {
			c.DBBound = map[string]int{"CA": int(bound), "VA": int(bound % 3)}
		}
		for _, pack := range []func([]sched.Task, sched.Constraints) (*sched.Schedule, error){
			sched.FFDTDC, sched.NFDTDC, sched.FIFO,
		} {
			s, err := pack(tasks, c)
			if err != nil {
				continue // invalid instances must error, not panic
			}
			if err := s.Validate(tasks, c); err != nil {
				t.Fatalf("accepted instance packed invalidly: %v", err)
			}
			flat := cluster.FlattenSchedule(s)
			if len(flat) != len(tasks) {
				t.Fatalf("flatten lost tasks: %d of %d", len(flat), len(tasks))
			}
			deadline := s.Makespan() / 2
			res, err := cluster.ExecuteBackfill(flat, c, deadline)
			if err == nil {
				if err := cluster.ValidateExecution(res, c, deadline); err != nil {
					t.Fatalf("backfill execution invalid: %v", err)
				}
				if len(res.Records)+len(res.Unstarted) != len(tasks) {
					t.Fatalf("execution lost tasks: %d + %d of %d",
						len(res.Records), len(res.Unstarted), len(tasks))
				}
			}
			lv := cluster.ExecuteLevelSync(s, deadline)
			if err := cluster.ValidateExecution(lv, c, deadline); err != nil {
				t.Fatalf("level-sync execution invalid: %v", err)
			}
		}
	})
}
