package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// clique builds the adjacency of a complete graph on n nodes.
func clique(n int) [][]int {
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				adj[i] = append(adj[i], j)
			}
		}
	}
	return adj
}

func TestRelaxedColoringClassicalCase(t *testing.T) {
	// r=1 on a triangle: with the conservative greedy rule (≤ r−1 ... at
	// most r shared) each node may have at most 1 same-colored neighbor.
	adj := clique(3)
	colors, err := RelaxedColoring(adj, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateRelaxedColoring(adj, colors, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRelaxedColoringReducesColors(t *testing.T) {
	adj := clique(12)
	c1, err := RelaxedColoring(adj, 1)
	if err != nil {
		t.Fatal(err)
	}
	c4, err := RelaxedColoring(adj, 4)
	if err != nil {
		t.Fatal(err)
	}
	if NumColors(c4) >= NumColors(c1) {
		t.Fatalf("relaxation did not reduce colors: r=1→%d, r=4→%d", NumColors(c1), NumColors(c4))
	}
}

func TestRelaxedColoringValidation(t *testing.T) {
	if _, err := RelaxedColoring(clique(3), 0); err == nil {
		t.Error("r=0 accepted")
	}
	bad := [][]int{{5}}
	if _, err := RelaxedColoring(bad, 1); err == nil {
		t.Error("out-of-range neighbor accepted")
	}
	loop := [][]int{{0}}
	if _, err := RelaxedColoring(loop, 1); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestRelaxedColoringRandomGraphs(t *testing.T) {
	err := quick.Check(func(seed uint16, rRaw uint8) bool {
		r := int(rRaw%4) + 1
		rng := stats.NewRNG(uint64(seed))
		n := rng.Intn(20) + 2
		adj := make([][]int, n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Bool(0.3) {
					adj[i] = append(adj[i], j)
					adj[j] = append(adj[j], i)
				}
			}
		}
		colors, err := RelaxedColoring(adj, r)
		if err != nil {
			return false
		}
		return ValidateRelaxedColoring(adj, colors, r) == nil
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCliqueColoring(t *testing.T) {
	// A clique of 10 with r=2: groups of 3 → 4 colors, each member has ≤2
	// same-colored neighbors.
	colors, err := CliqueColoring(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if NumColors(colors) != 4 {
		t.Fatalf("%d colors want 4", NumColors(colors))
	}
	if err := ValidateRelaxedColoring(clique(10), colors, 2); err != nil {
		t.Fatal(err)
	}
	// r=1 degenerates to pairs.
	c1, _ := CliqueColoring(10, 1)
	if NumColors(c1) != 5 {
		t.Fatalf("r=1: %d colors want 5", NumColors(c1))
	}
	if _, err := CliqueColoring(5, 0); err == nil {
		t.Fatal("r=0 accepted")
	}
}

func TestCliqueColoringMatchesGreedyQuality(t *testing.T) {
	// On cliques, the exact construction should never use more colors
	// than greedy.
	for _, n := range []int{5, 8, 15} {
		for _, r := range []int{1, 2, 3} {
			exact, err := CliqueColoring(n, r)
			if err != nil {
				t.Fatal(err)
			}
			greedy, err := RelaxedColoring(clique(n), r)
			if err != nil {
				t.Fatal(err)
			}
			if NumColors(exact) > NumColors(greedy) {
				t.Fatalf("n=%d r=%d: exact %d > greedy %d", n, r, NumColors(exact), NumColors(greedy))
			}
		}
	}
}

func TestValidateRelaxedColoringCatches(t *testing.T) {
	adj := clique(4)
	all0 := []int{0, 0, 0, 0}
	if err := ValidateRelaxedColoring(adj, all0, 2); err == nil {
		t.Fatal("violation not caught (each node has 3 same-colored neighbors)")
	}
	if err := ValidateRelaxedColoring(adj, all0, 3); err != nil {
		t.Fatal("r=3 should accept the monochromatic 4-clique")
	}
}
