package sched_test

import (
	"fmt"

	"repro/internal/sched"
)

// ExampleFFDTDC packs a tiny workload with the paper's headline heuristic.
func ExampleFFDTDC() {
	tasks := []sched.Task{
		{Region: "CA", Cell: 0, Nodes: 6, Time: 900},
		{Region: "CA", Cell: 1, Nodes: 6, Time: 880},
		{Region: "VA", Cell: 0, Nodes: 4, Time: 340},
		{Region: "VA", Cell: 1, Nodes: 4, Time: 330},
		{Region: "WY", Cell: 0, Nodes: 2, Time: 100},
	}
	c := sched.Constraints{
		TotalNodes: 16,
		DBBound:    map[string]int{"CA": 1, "VA": 2, "WY": 2},
	}
	s, err := sched.FFDTDC(tasks, c)
	if err != nil {
		panic(err)
	}
	fmt.Printf("levels: %d\n", len(s.Levels))
	fmt.Printf("makespan: %.0f s\n", s.Makespan())
	fmt.Printf("strip utilization: %.2f\n", s.Utilization())
	// The CA DB bound (one connection) forces the second CA task onto a
	// later level even though nodes are free.
	for i, l := range s.Levels {
		fmt.Printf("level %d:", i)
		for _, t := range l.Tasks {
			fmt.Printf(" %s/%d", t.Region, t.Cell)
		}
		fmt.Println()
	}
	// Output:
	// levels: 2
	// makespan: 1780 s
	// strip utilization: 0.48
	// level 0: CA/0 VA/0 VA/1 WY/0
	// level 1: CA/1
}

// ExampleCliqueColoring shows the r-relaxed coloring of one region's task
// clique: with bound r, each color class holds r+1 mutually-conflicting
// tasks.
func ExampleCliqueColoring() {
	colors, _ := sched.CliqueColoring(12, 3)
	fmt.Println("time slots for 12 tasks at r=3:", sched.NumColors(colors))
	// Output:
	// time slots for 12 tasks at r=3: 3
}
