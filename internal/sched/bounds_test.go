package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestMakespanLowerBound(t *testing.T) {
	tasks := []Task{
		{Region: "A", Nodes: 2, Time: 10},
		{Region: "B", Nodes: 2, Time: 10},
	}
	// Area bound: 40 node-s / 4 nodes = 10; longest = 10.
	if lb := MakespanLowerBound(tasks, 4); lb != 10 {
		t.Fatalf("lb %v want 10", lb)
	}
	// Longest task dominates when the strip is wide.
	if lb := MakespanLowerBound(tasks, 100); lb != 10 {
		t.Fatalf("lb %v want 10 (longest task)", lb)
	}
	if MakespanLowerBound(tasks, 0) != 0 {
		t.Fatal("zero nodes should bound at 0")
	}
}

// Without DB constraints, the classical worst-case guarantees hold against
// the lower bound: NFDH ≤ 2·OPT (+1 level of slack against LB), FFDH ≤
// 1.7·OPT. LB ≤ OPT, so ratios to LB can exceed the OPT guarantees
// slightly; the test allows the standard additive-term headroom.
func TestHeuristicsNearTheoreticalGuarantees(t *testing.T) {
	err := quick.Check(func(seed uint16) bool {
		r := stats.NewRNG(uint64(seed) + 1)
		n := r.Intn(150) + 20
		width := r.Intn(48) + 16
		tasks := make([]Task, n)
		for i := range tasks {
			tasks[i] = Task{
				Region: string(rune('A' + i%20)),
				Cell:   i,
				Nodes:  r.Intn(width/4) + 1,
				Time:   1 + 100*r.Float64(),
			}
		}
		c := Constraints{TotalNodes: width}
		nf, err := NFDTDC(tasks, c)
		if err != nil {
			return false
		}
		ff, err := FFDTDC(tasks, c)
		if err != nil {
			return false
		}
		// Ratios against the LOWER bound: allow 2.5 and 2.2 (the
		// guarantees are against OPT ≥ LB, plus the tallest-level
		// additive term).
		return ApproxRatio(nf, tasks) <= 2.5 && ApproxRatio(ff, tasks) <= 2.2
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// FFDT's ratio never exceeds NFDT's on identical unconstrained input.
func TestFFDTNeverWorseUnconstrained(t *testing.T) {
	err := quick.Check(func(seed uint16) bool {
		r := stats.NewRNG(uint64(seed) + 1000)
		n := r.Intn(80) + 10
		tasks := make([]Task, n)
		for i := range tasks {
			tasks[i] = Task{Region: "X", Cell: i, Nodes: r.Intn(8) + 1, Time: 1 + 50*r.Float64()}
		}
		c := Constraints{TotalNodes: 32}
		nf, err := NFDTDC(tasks, c)
		if err != nil {
			return false
		}
		ff, err := FFDTDC(tasks, c)
		if err != nil {
			return false
		}
		return ff.Makespan() <= nf.Makespan()+1e-9
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// The production nightly workload packs within ≈25% of the lower bound
// under FFDT-DC — far better than its worst case.
func TestNightlyNearLowerBound(t *testing.T) {
	w := Workload{Cells: 12, Replicates: 15, Time: DefaultTimeModel(), MaxInterventionFactor: 4}
	tasks := w.Tasks(stats.NewRNG(9))
	c := Constraints{TotalNodes: 720, DBBound: DefaultDBBounds(16)}
	ff, err := FFDTDC(tasks, c)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := ApproxRatio(ff, tasks); ratio > 1.6 {
		t.Fatalf("FFDT-DC strip ratio %v on the nightly workload", ratio)
	}
}
