package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/synthpop"
)

func nightlyTasks(t testing.TB, seed uint64, cells, reps int) []Task {
	t.Helper()
	w := Workload{Cells: cells, Replicates: reps, Time: DefaultTimeModel(), GroupReplicates: true}
	return w.Tasks(stats.NewRNG(seed))
}

func bridgesConstraints(bound int) Constraints {
	return Constraints{TotalNodes: 720, DBBound: DefaultDBBounds(bound)}
}

func TestWorkloadSize(t *testing.T) {
	tasks := nightlyTasks(t, 1, 12, 15)
	if len(tasks) != 12*51 {
		t.Fatalf("%d tasks want %d (12 cells × 51 regions, replicates grouped)", len(tasks), 12*51)
	}
	w := Workload{Cells: 12, Replicates: 15, Time: DefaultTimeModel()}
	ungrouped := w.Tasks(stats.NewRNG(1))
	if len(ungrouped) != 12*51*15 {
		t.Fatalf("%d ungrouped tasks want %d (the paper's 9180 simulations)", len(ungrouped), 9180)
	}
}

func TestNodesForRegionCategories(t *testing.T) {
	counts := map[int]int{}
	for _, st := range synthpop.States {
		n := NodesForRegion(st.Population)
		if n != 2 && n != 4 && n != 6 {
			t.Fatalf("region %s got %d nodes", st.Code, n)
		}
		counts[n]++
	}
	if counts[2] == 0 || counts[4] == 0 || counts[6] == 0 {
		t.Fatalf("categories not all used: %v", counts)
	}
	ca, _ := synthpop.StateByCode("CA")
	wy, _ := synthpop.StateByCode("WY")
	if NodesForRegion(ca.Population) != 6 || NodesForRegion(wy.Population) != 2 {
		t.Fatal("CA should be large, WY small")
	}
}

func TestTimeModelReproducesFigure8Range(t *testing.T) {
	tm := DefaultTimeModel()
	ca, _ := synthpop.StateByCode("CA")
	wy, _ := synthpop.StateByCode("WY")
	tCA := tm.Mean(ca.Population, NodesForRegion(ca.Population))
	tWY := tm.Mean(wy.Population, NodesForRegion(wy.Population))
	// Figure 8: state runtimes span ≈100 s (small states) to ≈1400 s.
	if tCA < 600 || tCA > 1400 {
		t.Fatalf("CA time %v outside Figure 8 range", tCA)
	}
	if tWY < 60 || tWY > 300 {
		t.Fatalf("WY time %v outside Figure 8 range", tWY)
	}
	if tCA <= tWY {
		t.Fatal("time not correlated with network size")
	}
	// Interventions inflate time (Figure 7 bottom).
	d2ct := tm
	d2ct.InterventionFactor = 4
	if d2ct.Mean(ca.Population, 6) <= tm.Mean(ca.Population, 6)*2 {
		t.Fatal("intervention factor not applied")
	}
}

func TestNFDTAndFFDTValidSchedules(t *testing.T) {
	tasks := nightlyTasks(t, 2, 12, 15)
	c := bridgesConstraints(4)
	for name, pack := range map[string]func([]Task, Constraints) (*Schedule, error){
		"NFDT-DC": NFDTDC, "FFDT-DC": FFDTDC, "FIFO": FIFO,
	} {
		s, err := pack(tasks, c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Validate(tasks, c); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.NumTasks() != len(tasks) {
			t.Fatalf("%s scheduled %d of %d tasks", name, s.NumTasks(), len(tasks))
		}
	}
}

// On the static strip-packing metric FFDT-DC never loses to NFDT-DC, and
// under a binding DB constraint it wins strictly: first fit keeps filling
// earlier levels with other regions' tasks after the bound closes a region
// out, while next fit abandons the remaining width. (The execution-level
// Figure 9 comparison — ≈96% vs 44–56% utilization — lives in the cluster
// package, which replays these packings through the Slurm-like executor.)
func TestFFDTBeatsNFDTUnderDBConstraints(t *testing.T) {
	w := Workload{Cells: 12, Replicates: 15, Time: DefaultTimeModel(),
		GroupReplicates: true, MaxInterventionFactor: 4}
	tasks := w.Tasks(stats.NewRNG(3))
	c := bridgesConstraints(2) // tight DB bound: the regime that hurts NFDT
	nf, err := NFDTDC(tasks, c)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := FFDTDC(tasks, c)
	if err != nil {
		t.Fatal(err)
	}
	un, uf := nf.Utilization(), ff.Utilization()
	if uf < un {
		t.Fatalf("FFDT-DC (%v) lost to NFDT-DC (%v)", uf, un)
	}
	if len(ff.Levels) > len(nf.Levels) {
		t.Fatalf("FFDT-DC used more levels (%d) than NFDT-DC (%d)", len(ff.Levels), len(nf.Levels))
	}
	if ff.Makespan() > nf.Makespan() {
		t.Fatal("FFDT-DC should not finish later")
	}
}

func TestSchedulerHandlesUnboundedRegions(t *testing.T) {
	tasks := nightlyTasks(t, 4, 6, 5)
	c := Constraints{TotalNodes: 720} // no DB bounds
	nf, err := NFDTDC(tasks, c)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := FFDTDC(tasks, c)
	if err != nil {
		t.Fatal(err)
	}
	if ff.Utilization() < nf.Utilization()-1e-9 {
		t.Fatal("FFDT should never lose to NFDT")
	}
	if err := nf.Validate(tasks, c); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleErrors(t *testing.T) {
	c := Constraints{TotalNodes: 4}
	if _, err := NFDTDC([]Task{{Region: "VA", Nodes: 8, Time: 1}}, c); err == nil {
		t.Error("oversized task accepted")
	}
	if _, err := FFDTDC([]Task{{Region: "VA", Nodes: 2, Time: -1}}, c); err == nil {
		t.Error("negative time accepted")
	}
	if _, err := NFDTDC(nil, Constraints{TotalNodes: 0}); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := FFDTDC([]Task{{Region: "VA", Nodes: 1, Time: 1}},
		Constraints{TotalNodes: 2, DBBound: map[string]int{"VA": 0}}); err == nil {
		t.Error("zero DB bound accepted")
	}
}

func TestEmptyWorkload(t *testing.T) {
	s, err := NFDTDC(nil, Constraints{TotalNodes: 10})
	if err != nil || s.Makespan() != 0 || s.Utilization() != 0 {
		t.Fatal("empty workload mishandled")
	}
	s2, err := FFDTDC(nil, Constraints{TotalNodes: 10})
	if err != nil || len(s2.Levels) != 0 {
		t.Fatal("empty FFDT mishandled")
	}
}

func TestStartTimesConsistent(t *testing.T) {
	tasks := nightlyTasks(t, 5, 4, 3)
	c := bridgesConstraints(4)
	s, err := FFDTDC(tasks, c)
	if err != nil {
		t.Fatal(err)
	}
	placed := s.StartTimes()
	if len(placed) != len(tasks) {
		t.Fatalf("%d placements want %d", len(placed), len(tasks))
	}
	levelStart := map[int]float64{}
	for _, p := range placed {
		if prev, ok := levelStart[p.Level]; ok && prev != p.Start {
			t.Fatal("tasks on one level have different starts")
		}
		levelStart[p.Level] = p.Start
		if p.End-p.Start != p.Task.Time {
			t.Fatal("end-start != task time")
		}
	}
	// Levels start sequentially.
	for li := 1; li < len(s.Levels); li++ {
		if levelStart[li] <= levelStart[li-1] {
			t.Fatal("levels not sequential")
		}
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	tasks := []Task{{Region: "VA", Cell: 0, Nodes: 2, Time: 5}}
	c := Constraints{TotalNodes: 4, DBBound: map[string]int{"VA": 1}}
	s, err := FFDTDC(tasks, c)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate a task into the schedule.
	s.Levels[0].Tasks = append(s.Levels[0].Tasks, tasks[0])
	if err := s.Validate(tasks, c); err == nil {
		t.Fatal("duplicated task not caught")
	}
}

func TestSchedulesDeterministic(t *testing.T) {
	tasks := nightlyTasks(t, 6, 12, 15)
	c := bridgesConstraints(3)
	a, _ := FFDTDC(tasks, c)
	b, _ := FFDTDC(tasks, c)
	if a.Makespan() != b.Makespan() || len(a.Levels) != len(b.Levels) {
		t.Fatal("FFDT not deterministic")
	}
}

func TestPackingQuick(t *testing.T) {
	err := quick.Check(func(seed uint16, boundRaw, cellsRaw uint8) bool {
		bound := int(boundRaw%5) + 1
		cells := int(cellsRaw%8) + 1
		tasks := Workload{Cells: cells, Replicates: 2, Time: DefaultTimeModel(), GroupReplicates: true}.
			Tasks(stats.NewRNG(uint64(seed)))
		c := Constraints{TotalNodes: 128, DBBound: DefaultDBBounds(bound)}
		for _, pack := range []func([]Task, Constraints) (*Schedule, error){NFDTDC, FFDTDC} {
			s, err := pack(tasks, c)
			if err != nil {
				return false
			}
			if s.Validate(tasks, c) != nil {
				return false
			}
			if s.Utilization() < 0 || s.Utilization() > 1+1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorkMatchesTasks(t *testing.T) {
	tasks := nightlyTasks(t, 7, 3, 2)
	want := 0.0
	for _, tk := range tasks {
		want += tk.Time * float64(tk.Nodes)
	}
	c := bridgesConstraints(4)
	s, _ := FFDTDC(tasks, c)
	if got := s.Work(); got < want*(1-1e-12) || got > want*(1+1e-12) {
		t.Fatalf("work %v want %v", got, want)
	}
}
