// Package lhs implements Latin hypercube sampling (McKay, Beckman & Conover
// 1979), which the paper uses to build the 100-configuration prior designs
// for Bayesian calibration (Appendix F, case study 3).
package lhs

import (
	"fmt"

	"repro/internal/stats"
)

// Range is a closed interval for one design parameter.
type Range struct {
	Name   string
	Lo, Hi float64
}

// Sample returns an n-point Latin hypercube design over the given parameter
// ranges. The result is an n × len(ranges) matrix of parameter settings:
// each column, when mapped back to [0,1), hits every one of the n equal
// strata exactly once.
func Sample(r *stats.RNG, n int, ranges []Range) ([][]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("lhs: non-positive design size %d", n)
	}
	if len(ranges) == 0 {
		return nil, fmt.Errorf("lhs: no parameter ranges")
	}
	for _, rg := range ranges {
		if rg.Hi < rg.Lo {
			return nil, fmt.Errorf("lhs: inverted range for %q: [%g, %g]", rg.Name, rg.Lo, rg.Hi)
		}
	}
	design := make([][]float64, n)
	for i := range design {
		design[i] = make([]float64, len(ranges))
	}
	for j, rg := range ranges {
		perm := r.Perm(n)
		for i := 0; i < n; i++ {
			// Random point within stratum perm[i].
			u := (float64(perm[i]) + r.Float64()) / float64(n)
			design[i][j] = rg.Lo + u*(rg.Hi-rg.Lo)
		}
	}
	return design, nil
}

// Maximin returns the best of k candidate LHS designs under the maximin
// inter-point distance criterion, a standard space-filling refinement.
func Maximin(r *stats.RNG, n int, ranges []Range, k int) ([][]float64, error) {
	if k <= 0 {
		k = 1
	}
	var best [][]float64
	bestScore := -1.0
	for c := 0; c < k; c++ {
		d, err := Sample(r, n, ranges)
		if err != nil {
			return nil, err
		}
		// The first candidate is always taken: minPairDist's no-pair
		// sentinel is -1.0, which `s > bestScore` would never beat for
		// n == 1 designs, returning a nil design.
		s := minPairDist(d, ranges)
		if best == nil || s > bestScore {
			best, bestScore = d, s
		}
	}
	return best, nil
}

// minPairDist computes the minimum pairwise distance with each dimension
// normalized to unit range so no parameter dominates.
func minPairDist(design [][]float64, ranges []Range) float64 {
	min := -1.0
	for i := 0; i < len(design); i++ {
		for j := i + 1; j < len(design); j++ {
			d := 0.0
			for c := range ranges {
				span := ranges[c].Hi - ranges[c].Lo
				if span == 0 {
					continue
				}
				diff := (design[i][c] - design[j][c]) / span
				d += diff * diff
			}
			if min < 0 || d < min {
				min = d
			}
		}
	}
	return min
}
