package lhs

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestSampleShape(t *testing.T) {
	r := stats.NewRNG(1)
	ranges := []Range{{Name: "tau", Lo: 0, Hi: 1}, {Name: "symp", Lo: 0.2, Hi: 0.8}}
	d, err := Sample(r, 100, ranges)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 100 || len(d[0]) != 2 {
		t.Fatalf("design shape %dx%d", len(d), len(d[0]))
	}
}

func TestSampleWithinRanges(t *testing.T) {
	r := stats.NewRNG(2)
	ranges := []Range{{Lo: -5, Hi: 5}, {Lo: 100, Hi: 200}}
	d, err := Sample(r, 50, ranges)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range d {
		if row[0] < -5 || row[0] > 5 || row[1] < 100 || row[1] > 200 {
			t.Fatalf("point outside ranges: %v", row)
		}
	}
}

// The Latin property: each of the n strata is hit exactly once per dimension.
func TestLatinProperty(t *testing.T) {
	r := stats.NewRNG(3)
	n := 40
	ranges := []Range{{Lo: 0, Hi: 1}, {Lo: 2, Hi: 4}, {Lo: -1, Hi: 0}}
	d, err := Sample(r, n, ranges)
	if err != nil {
		t.Fatal(err)
	}
	for c, rg := range ranges {
		strata := make([]int, n)
		for _, row := range d {
			u := (row[c] - rg.Lo) / (rg.Hi - rg.Lo)
			s := int(u * float64(n))
			if s == n {
				s = n - 1
			}
			strata[s]++
		}
		for s, count := range strata {
			if count != 1 {
				t.Fatalf("dim %d stratum %d hit %d times", c, s, count)
			}
		}
	}
}

func TestLatinPropertyQuick(t *testing.T) {
	err := quick.Check(func(seed uint16, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		r := stats.NewRNG(uint64(seed))
		d, err := Sample(r, n, []Range{{Lo: 0, Hi: 1}})
		if err != nil {
			return false
		}
		vals := make([]float64, n)
		for i, row := range d {
			vals[i] = row[0]
		}
		sort.Float64s(vals)
		for i, v := range vals {
			lo := float64(i) / float64(n)
			hi := float64(i+1) / float64(n)
			if v < lo || v >= hi {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSampleErrors(t *testing.T) {
	r := stats.NewRNG(4)
	if _, err := Sample(r, 0, []Range{{Lo: 0, Hi: 1}}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Sample(r, 5, nil); err == nil {
		t.Error("no ranges accepted")
	}
	if _, err := Sample(r, 5, []Range{{Lo: 1, Hi: 0}}); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestDegenerateRange(t *testing.T) {
	r := stats.NewRNG(5)
	d, err := Sample(r, 10, []Range{{Lo: 3, Hi: 3}})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range d {
		if row[0] != 3 {
			t.Fatalf("degenerate range produced %v", row[0])
		}
	}
}

func TestMaximinAtLeastAsSpread(t *testing.T) {
	ranges := []Range{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}
	// Average over several seeds: maximin-of-20 should beat a single draw.
	winsOrTies := 0
	const trials = 10
	for s := uint64(0); s < trials; s++ {
		r1 := stats.NewRNG(1000 + s)
		single, err := Sample(r1, 12, ranges)
		if err != nil {
			t.Fatal(err)
		}
		r2 := stats.NewRNG(2000 + s)
		multi, err := Maximin(r2, 12, ranges, 20)
		if err != nil {
			t.Fatal(err)
		}
		if minPairDist(multi, ranges) >= minPairDist(single, ranges) {
			winsOrTies++
		}
	}
	if winsOrTies < trials/2 {
		t.Fatalf("maximin won only %d/%d trials", winsOrTies, trials)
	}
}

// Regression: for n == 1 the maximin score of every candidate is the
// no-pair sentinel (-1.0), which the old `s > bestScore` comparison never
// beat — Maximin returned a nil design with a nil error.
func TestMaximinSinglePointDesign(t *testing.T) {
	r := stats.NewRNG(11)
	ranges := []Range{{Lo: 0, Hi: 1}, {Lo: -2, Hi: 2}}
	for _, k := range []int{1, 5} {
		d, err := Maximin(r, 1, ranges, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(d) != 1 || len(d[0]) != 2 {
			t.Fatalf("k=%d: n=1 maximin design %v; want one 2-d point", k, d)
		}
		for c, rg := range ranges {
			if d[0][c] < rg.Lo || d[0][c] > rg.Hi {
				t.Fatalf("point outside range: %v", d[0])
			}
		}
	}
}

func TestMaximinZeroCandidates(t *testing.T) {
	r := stats.NewRNG(6)
	d, err := Maximin(r, 5, []Range{{Lo: 0, Hi: 1}}, 0)
	if err != nil || len(d) != 5 {
		t.Fatalf("maximin k=0 fallback failed: %v", err)
	}
}

func TestDesignIsSpaceFilling(t *testing.T) {
	// With n=100 points in 1-d, sorted gaps must all be < 2/n.
	r := stats.NewRNG(7)
	d, err := Sample(r, 100, []Range{{Lo: 0, Hi: 1}})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, len(d))
	for i, row := range d {
		vals[i] = row[0]
	}
	sort.Float64s(vals)
	for i := 1; i < len(vals); i++ {
		if gap := vals[i] - vals[i-1]; gap > 2.0/100+1e-9 {
			t.Fatalf("gap %v too large for LHS", gap)
		}
	}
	if math.Abs(stats.Mean(vals)-0.5) > 0.02 {
		t.Fatalf("design mean %v", stats.Mean(vals))
	}
}
