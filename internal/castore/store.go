// Package castore provides a generic content-addressed LRU store. Keys are
// content hashes (the caller addresses values by a SHA-256 of whatever
// deterministically produced them), so a stored value is exactly what a
// recomputation would yield and eviction is purely a capacity decision.
//
// The store bounds capacity two ways at once: by entry count and by the
// total cost of resident values (typically bytes, via the cost function).
// Either bound set to zero is unenforced. The scenario result cache and the
// simulator snapshot store are both built on it.
package castore

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// Store is a content-addressed LRU map from string keys to values of type
// V. It is safe for concurrent use.
type Store[V any] struct {
	mu         sync.Mutex
	maxEntries int
	maxCost    int64
	cost       func(V) int64
	ll         *list.List // front = most recently used
	items      map[string]*list.Element
	totalCost  int64
	hits       int64
	misses     int64
	evictions  int64
}

type entry[V any] struct {
	key  string
	val  V
	cost int64
}

// Option configures a Store.
type Option[V any] func(*Store[V])

// WithMaxEntries bounds the number of resident entries; n <= 0 leaves the
// count unbounded.
func WithMaxEntries[V any](n int) Option[V] {
	return func(s *Store[V]) { s.maxEntries = n }
}

// WithMaxCost bounds the total cost of resident values as measured by the
// cost function; c <= 0 leaves cost unbounded. A single value costing more
// than the bound is admitted alone (and evicts everything else) rather than
// thrashing.
func WithMaxCost[V any](c int64, cost func(V) int64) Option[V] {
	return func(s *Store[V]) { s.maxCost, s.cost = c, cost }
}

// New builds a store. With no options the store is unbounded — callers
// should set at least one capacity bound.
func New[V any](opts ...Option[V]) *Store[V] {
	s := &Store[V]{ll: list.New(), items: map[string]*list.Element{}}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Get returns the value for key and records a hit. A lookup miss records
// nothing — callers record a miss via RecordMiss only when they actually
// compute the value, so deduplicated waiters do not skew the ratio.
func (s *Store[V]) Get(key string) (V, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	s.ll.MoveToFront(el)
	s.hits++
	return el.Value.(*entry[V]).val, true
}

// RecordMiss books one miss (a value that had to be computed).
func (s *Store[V]) RecordMiss() {
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
}

// Put inserts or refreshes a value, evicting least-recently-used entries
// until both capacity bounds hold.
func (s *Store[V]) Put(key string, val V) {
	var c int64
	if s.cost != nil {
		c = s.cost(val)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		e := el.Value.(*entry[V])
		s.totalCost += c - e.cost
		e.val, e.cost = val, c
		s.ll.MoveToFront(el)
		s.evict()
		return
	}
	s.items[key] = s.ll.PushFront(&entry[V]{key: key, val: val, cost: c})
	s.totalCost += c
	s.evict()
}

// evict drops LRU entries until the bounds hold; callers hold mu. The most
// recently used entry is never evicted, so one oversized value resides
// alone instead of making the store unusable.
func (s *Store[V]) evict() {
	for s.ll.Len() > 1 &&
		((s.maxEntries > 0 && s.ll.Len() > s.maxEntries) ||
			(s.maxCost > 0 && s.totalCost > s.maxCost)) {
		oldest := s.ll.Back()
		e := oldest.Value.(*entry[V])
		s.ll.Remove(oldest)
		delete(s.items, e.key)
		s.totalCost -= e.cost
		s.evictions++
	}
}

// Keys lists the resident keys, most recently used first. Unlike Get it
// touches neither the LRU order nor the hit counters, so status scans do
// not distort eviction or hit-ratio accounting.
func (s *Store[V]) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, s.ll.Len())
	for el := s.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry[V]).key)
	}
	return out
}

// Peek returns the value for key without touching LRU order or the hit
// counters.
func (s *Store[V]) Peek(key string) (V, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	return el.Value.(*entry[V]).val, true
}

// Len returns the number of resident entries.
func (s *Store[V]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Stats is a point-in-time view of the store counters.
type Stats struct {
	Entries   int     `json:"entries"`
	Cost      int64   `json:"cost"`
	MaxCost   int64   `json:"max_cost,omitempty"`
	Capacity  int     `json:"capacity,omitempty"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRatio  float64 `json:"hit_ratio"`
}

// Stats snapshots the counters. HitRatio is hits / (hits + misses), 0 when
// nothing has been looked up.
func (s *Store[V]) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Entries: s.ll.Len(), Cost: s.totalCost,
		MaxCost: s.maxCost, Capacity: s.maxEntries,
		Hits: s.hits, Misses: s.misses, Evictions: s.evictions,
	}
	if total := s.hits + s.misses; total > 0 {
		st.HitRatio = float64(s.hits) / float64(total)
	}
	return st
}

// RegisterMetrics exposes the store counters on a metrics registry under
// the given prefix (e.g. "epi_snapshot"): <prefix>_hits_total,
// <prefix>_misses_total, <prefix>_evictions_total, <prefix>_entries,
// <prefix>_cost_bytes, and <prefix>_hit_ratio (hits / lookups, so clients
// need not divide counters themselves).
func (s *Store[V]) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+"_hits_total", func() float64 { return float64(s.Stats().Hits) })
	reg.CounterFunc(prefix+"_misses_total", func() float64 { return float64(s.Stats().Misses) })
	reg.CounterFunc(prefix+"_evictions_total", func() float64 { return float64(s.Stats().Evictions) })
	reg.GaugeFunc(prefix+"_entries", func() float64 { return float64(s.Len()) })
	reg.GaugeFunc(prefix+"_cost_bytes", func() float64 { return float64(s.Stats().Cost) })
	reg.GaugeFunc(prefix+"_hit_ratio", func() float64 { return s.Stats().HitRatio })
}
