package castore

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestEntryCapEviction(t *testing.T) {
	s := New(WithMaxEntries[int](3))
	for i := 0; i < 4; i++ {
		s.Put(fmt.Sprintf("k%d", i), i)
	}
	if s.Len() != 3 {
		t.Fatalf("len %d after cap-3 inserts, want 3", s.Len())
	}
	if _, ok := s.Get("k0"); ok {
		t.Error("oldest entry k0 survived eviction")
	}
	for i := 1; i < 4; i++ {
		if _, ok := s.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("k%d evicted, want retained", i)
		}
	}
}

func TestGetRefreshesRecency(t *testing.T) {
	s := New(WithMaxEntries[int](2))
	s.Put("a", 1)
	s.Put("b", 2)
	s.Get("a")    // a becomes MRU
	s.Put("c", 3) // must evict b
	if _, ok := s.Get("a"); !ok {
		t.Error("recently used entry a evicted")
	}
	if _, ok := s.Get("b"); ok {
		t.Error("least recently used entry b retained")
	}
}

func TestCostEviction(t *testing.T) {
	cost := func(v string) int64 { return int64(len(v)) }
	s := New(WithMaxCost(10, cost))
	s.Put("a", "12345")
	s.Put("b", "12345")
	if got := s.Stats().Cost; got != 10 {
		t.Fatalf("cost %d, want 10", got)
	}
	s.Put("c", "123") // budget exceeded: evict LRU a
	if _, ok := s.Get("a"); ok {
		t.Error("a retained past cost budget")
	}
	if got := s.Stats().Cost; got != 8 {
		t.Errorf("cost %d after eviction, want 8", got)
	}
}

// An oversized value must still be storable: the MRU entry is never
// evicted, so a single value larger than the whole budget resides alone.
func TestOversizedValueResidesAlone(t *testing.T) {
	cost := func(v string) int64 { return int64(len(v)) }
	s := New(WithMaxCost(4, cost))
	s.Put("small", "ab")
	s.Put("big", strings.Repeat("x", 100))
	if _, ok := s.Get("big"); !ok {
		t.Error("oversized value not retained")
	}
	if _, ok := s.Get("small"); ok {
		t.Error("small value survived the oversized insert")
	}
	if s.Len() != 1 {
		t.Errorf("len %d, want 1", s.Len())
	}
}

func TestPutRefreshUpdatesCost(t *testing.T) {
	cost := func(v string) int64 { return int64(len(v)) }
	s := New(WithMaxCost(100, cost))
	s.Put("k", "1234")
	s.Put("k", "12")
	if got := s.Stats().Cost; got != 2 {
		t.Errorf("cost %d after refresh, want 2", got)
	}
	if s.Len() != 1 {
		t.Errorf("len %d after refresh, want 1", s.Len())
	}
}

func TestStatsCounters(t *testing.T) {
	s := New(WithMaxEntries[int](1))
	s.Put("a", 1)
	s.Get("a")                   // hit
	if _, ok := s.Get("x"); ok { // automatic miss is NOT recorded
		t.Fatal("phantom hit")
	}
	s.RecordMiss()
	s.Put("b", 2) // evicts a
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 1 || st.Entries != 1 {
		t.Errorf("stats %+v, want hits=1 misses=1 evictions=1 entries=1", st)
	}
	if st.HitRatio != 0.5 {
		t.Errorf("hit ratio %g, want 0.5", st.HitRatio)
	}
}

func TestUnboundedStore(t *testing.T) {
	s := New[int]()
	for i := 0; i < 1000; i++ {
		s.Put(fmt.Sprintf("k%d", i), i)
	}
	if s.Len() != 1000 {
		t.Errorf("unbounded store evicted: len %d", s.Len())
	}
}

func TestRegisterMetrics(t *testing.T) {
	s := New(WithMaxEntries[int](2))
	reg := obs.NewRegistry()
	s.RegisterMetrics(reg, "test_cache")
	s.Put("a", 1)
	s.Get("a")
	s.RecordMiss()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"test_cache_hits_total 1",
		"test_cache_misses_total 1",
		"test_cache_entries 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics dump missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentAccess exercises the store under the race detector: the
// what-if fan-out hits the snapshot store from several branch workers at
// once.
func TestConcurrentAccess(t *testing.T) {
	s := New(WithMaxCost(1<<10, func(v []byte) int64 { return int64(len(v)) }))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (w+i)%32)
				if _, ok := s.Get(key); !ok {
					s.RecordMiss()
					s.Put(key, make([]byte, 64))
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Hits+st.Misses != 8*200 {
		t.Errorf("lost operations: hits %d + misses %d != 1600", st.Hits, st.Misses)
	}
}
