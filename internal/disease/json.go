package disease

import (
	"encoding/json"
	"fmt"

	"repro/internal/stats"
)

// This file implements the JSON interchange format for disease models: the
// paper's EpiHiper takes all of its inputs as JSON, with the exception of
// the contact network. The schema mirrors the PTTS structure — states with
// transmission attributes, transitions with age-stratified probabilities
// and typed dwell-time distributions.

// modelJSON is the on-disk form of a Model.
type modelJSON struct {
	Name             string           `json:"name"`
	Transmissibility float64          `json:"transmissibility"`
	ExposedState     string           `json:"exposedState"`
	States           []stateJSON      `json:"states"`
	Transitions      []transitionJSON `json:"transitions"`
}

type stateJSON struct {
	Name           string  `json:"name"`
	Infectivity    float64 `json:"infectivity,omitempty"`
	Susceptibility float64 `json:"susceptibility,omitempty"`
}

type transitionJSON struct {
	From  string      `json:"from"`
	To    string      `json:"to"`
	Prob  []float64   `json:"prob"`  // one per age band, or a single value
	Dwell []dwellJSON `json:"dwell"` // one per age band, or a single entry
}

type dwellJSON struct {
	Type   string    `json:"type"` // fixed | normal | discrete
	Value  float64   `json:"value,omitempty"`
	Mean   float64   `json:"mean,omitempty"`
	SD     float64   `json:"sd,omitempty"`
	Lo     float64   `json:"lo,omitempty"`
	Hi     float64   `json:"hi,omitempty"`
	Values []float64 `json:"values,omitempty"`
	Probs  []float64 `json:"probs,omitempty"`
}

// stateByName resolves a state name to its value.
func stateByName(name string) (State, error) {
	for s := State(0); s < NumStates; s++ {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("disease: unknown state %q", name)
}

func dwellToJSON(d stats.Dist) (dwellJSON, error) {
	switch v := d.(type) {
	case stats.Fixed:
		return dwellJSON{Type: "fixed", Value: v.V}, nil
	case stats.TruncNormal:
		return dwellJSON{Type: "normal", Mean: v.Mean, SD: v.SD, Lo: v.Lo, Hi: v.Hi}, nil
	case stats.Discrete:
		return dwellJSON{Type: "discrete", Values: v.Vals, Probs: v.Probs}, nil
	default:
		return dwellJSON{}, fmt.Errorf("disease: unsupported dwell distribution %T", d)
	}
}

// dwellJSONEqual compares two encoded dwell entries field by field.
func dwellJSONEqual(a, b dwellJSON) bool {
	if a.Type != b.Type || a.Value != b.Value || a.Mean != b.Mean ||
		a.SD != b.SD || a.Lo != b.Lo || a.Hi != b.Hi ||
		len(a.Values) != len(b.Values) || len(a.Probs) != len(b.Probs) {
		return false
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			return false
		}
	}
	for i := range a.Probs {
		if a.Probs[i] != b.Probs[i] {
			return false
		}
	}
	return true
}

func dwellFromJSON(dj dwellJSON) (stats.Dist, error) {
	switch dj.Type {
	case "fixed":
		return stats.Fixed{V: dj.Value}, nil
	case "normal":
		lo, hi := dj.Lo, dj.Hi
		if lo == 0 && hi == 0 {
			lo, hi = 0.5, 60
		}
		if dj.SD <= 0 {
			return nil, fmt.Errorf("disease: normal dwell needs positive sd, got %g", dj.SD)
		}
		return stats.TruncNormal{Mean: dj.Mean, SD: dj.SD, Lo: lo, Hi: hi}, nil
	case "discrete":
		return stats.NewDiscrete(dj.Values, dj.Probs)
	default:
		return nil, fmt.Errorf("disease: unknown dwell type %q", dj.Type)
	}
}

// MarshalJSON encodes the model in the interchange schema.
func (m *Model) MarshalJSON() ([]byte, error) {
	out := modelJSON{
		Name:             m.Name,
		Transmissibility: m.Transmissibility,
		ExposedState:     m.ExposedState.String(),
	}
	for s := State(0); s < NumStates; s++ {
		a := m.Attrs[s]
		if a.Infectivity != 0 || a.Susceptibility != 0 {
			out.States = append(out.States, stateJSON{
				Name: s.String(), Infectivity: a.Infectivity, Susceptibility: a.Susceptibility,
			})
		}
	}
	for s := State(0); s < NumStates; s++ {
		for _, tr := range m.transitions[s] {
			tj := transitionJSON{From: tr.From.String(), To: tr.To.String()}
			// Collapse uniform rows to a single value for readability.
			uniformP := true
			for _, p := range tr.Prob {
				if p != tr.Prob[0] {
					uniformP = false
					break
				}
			}
			if uniformP {
				tj.Prob = []float64{tr.Prob[0]}
			} else {
				tj.Prob = append(tj.Prob, tr.Prob[:]...)
			}
			// Encode all age bands, then collapse when identical.
			// (Dist implementations may hold slices, so compare the
			// encoded forms, not the interfaces.)
			var djs []dwellJSON
			uniformD := true
			for i := range tr.Dwell {
				dj, err := dwellToJSON(tr.Dwell[i])
				if err != nil {
					return nil, err
				}
				djs = append(djs, dj)
				if i > 0 && !dwellJSONEqual(djs[0], dj) {
					uniformD = false
				}
			}
			if uniformD {
				tj.Dwell = djs[:1]
			} else {
				tj.Dwell = djs
			}
			out.Transitions = append(out.Transitions, tj)
		}
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalJSON decodes a model from the interchange schema and validates
// it.
func (m *Model) UnmarshalJSON(data []byte) error {
	var in modelJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("disease: parsing model: %w", err)
	}
	exp, err := stateByName(in.ExposedState)
	if err != nil {
		return err
	}
	decoded := Model{
		Name:             in.Name,
		Transmissibility: in.Transmissibility,
		ExposedState:     exp,
	}
	for _, sj := range in.States {
		s, err := stateByName(sj.Name)
		if err != nil {
			return err
		}
		decoded.Attrs[s] = StateAttr{Infectivity: sj.Infectivity, Susceptibility: sj.Susceptibility}
	}
	for _, tj := range in.Transitions {
		from, err := stateByName(tj.From)
		if err != nil {
			return err
		}
		to, err := stateByName(tj.To)
		if err != nil {
			return err
		}
		tr := Transition{From: from, To: to}
		switch len(tj.Prob) {
		case 1:
			tr.Prob = uniformProb(tj.Prob[0])
		case int(NumAgeGroups):
			copy(tr.Prob[:], tj.Prob)
		default:
			return fmt.Errorf("disease: transition %s→%s has %d probabilities (want 1 or %d)",
				tj.From, tj.To, len(tj.Prob), NumAgeGroups)
		}
		switch len(tj.Dwell) {
		case 1:
			d, err := dwellFromJSON(tj.Dwell[0])
			if err != nil {
				return err
			}
			tr.Dwell = uniformDwell(d)
		case int(NumAgeGroups):
			for i, dj := range tj.Dwell {
				d, err := dwellFromJSON(dj)
				if err != nil {
					return err
				}
				tr.Dwell[i] = d
			}
		default:
			return fmt.Errorf("disease: transition %s→%s has %d dwell entries (want 1 or %d)",
				tj.From, tj.To, len(tj.Dwell), NumAgeGroups)
		}
		decoded.AddTransition(tr)
	}
	if err := decoded.Validate(); err != nil {
		return err
	}
	*m = decoded
	return nil
}
