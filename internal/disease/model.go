// Package disease implements the probabilistic timed transition system
// (PTTS) disease models used by the agent-based simulator: health states,
// age-stratified transition probabilities, dwell-time distributions, and
// per-state transmission attributes (infectivity / susceptibility).
//
// The COVID-19 model encoded in COVID19 mirrors Figure 12 and Tables III/IV
// of the paper (which in turn follow the CDC "best guess" planning
// parameters of March 31, 2020). The published table's probability columns
// reconstruct exactly: every state's out-probabilities sum to 1 for all
// five age bands.
package disease

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// State is a health state in the disease progression model.
type State uint8

// Health states of the COVID-19 PTTS (Figure 12). The (D) variants mark the
// track that terminates in death; the (H) variant marks medical attention
// that leads to hospitalization.
const (
	Susceptible State = iota
	Exposed
	Presymptomatic
	Symptomatic
	Asymptomatic
	Attended      // medical attention, recovering track
	AttendedH     // medical attention, resulting in hospitalization
	AttendedD     // medical attention, resulting in death
	Hospitalized  // hospitalized, recovering track
	HospitalizedD // hospitalized, resulting in death
	Ventilated    // ventilated, recovering track
	VentilatedD   // ventilated, resulting in death
	Recovered
	Dead
	RxFailure // treatment failure: susceptible again (Table IV)
	NumStates
)

var stateNames = [NumStates]string{
	"Susceptible", "Exposed", "Presymptomatic", "Symptomatic", "Asymptomatic",
	"Attended", "Attended(H)", "Attended(D)",
	"Hospitalized", "Hospitalized(D)", "Ventilated", "Ventilated(D)",
	"Recovered", "Dead", "RxFailure",
}

// String returns the state's display name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// AgeGroup indexes the five age bands of Table III.
type AgeGroup uint8

// The five age bands used by the CDC planning parameters.
const (
	Age0to4 AgeGroup = iota
	Age5to17
	Age18to49
	Age50to64
	Age65Plus
	NumAgeGroups
)

var ageGroupNames = [NumAgeGroups]string{"0-4", "5-17", "18-49", "50-64", "65+"}

// String returns the age band's display name.
func (a AgeGroup) String() string {
	if int(a) < len(ageGroupNames) {
		return ageGroupNames[a]
	}
	return fmt.Sprintf("AgeGroup(%d)", uint8(a))
}

// AgeGroupOf maps an age in years to its Table III band.
func AgeGroupOf(age int) AgeGroup {
	switch {
	case age <= 4:
		return Age0to4
	case age <= 17:
		return Age5to17
	case age <= 49:
		return Age18to49
	case age <= 64:
		return Age50to64
	default:
		return Age65Plus
	}
}

// Transition is one edge of the progression diagram: on leaving From, the
// individual moves to To with the age-specific probability, after a dwell
// time (in ticks, i.e. days) drawn from the age-specific distribution.
type Transition struct {
	From, To State
	Prob     [NumAgeGroups]float64
	Dwell    [NumAgeGroups]stats.Dist
}

// uniformProb fills all age bands with p.
func uniformProb(p float64) [NumAgeGroups]float64 {
	return [NumAgeGroups]float64{p, p, p, p, p}
}

// uniformDwell fills all age bands with d.
func uniformDwell(d stats.Dist) [NumAgeGroups]stats.Dist {
	return [NumAgeGroups]stats.Dist{d, d, d, d, d}
}

// StateAttr carries the per-state transmission attributes of Table IV.
type StateAttr struct {
	// Infectivity scales an infectious contact's force of infection;
	// zero means the state is not infectious.
	Infectivity float64
	// Susceptibility scales the probability of acquiring infection;
	// zero means the state cannot be infected.
	Susceptibility float64
}

// Model is a complete PTTS disease model.
type Model struct {
	Name string
	// Transmissibility is the global scaling factor ω applied to every
	// transmission propensity (Table IV: 0.18; the calibration workflows
	// treat it as the parameter TAU).
	Transmissibility float64
	// Attrs holds per-state infectivity and susceptibility.
	Attrs [NumStates]StateAttr
	// ExposedState is the state a successful transmission moves the
	// susceptible individual into.
	ExposedState State
	// transitions[s] lists the out-edges of state s. Empty slices mark
	// terminal states.
	transitions [NumStates][]Transition
}

// AddTransition appends a transition to the model.
func (m *Model) AddTransition(t Transition) {
	m.transitions[t.From] = append(m.transitions[t.From], t)
}

// Transitions returns the out-edges of state s (shared slice; do not
// mutate).
func (m *Model) Transitions(s State) []Transition { return m.transitions[s] }

// IsTerminal reports whether s has no out-transitions.
func (m *Model) IsTerminal(s State) bool { return len(m.transitions[s]) == 0 }

// IsInfectious reports whether s can transmit.
func (m *Model) IsInfectious(s State) bool { return m.Attrs[s].Infectivity > 0 }

// IsSusceptible reports whether s can be infected.
func (m *Model) IsSusceptible(s State) bool { return m.Attrs[s].Susceptibility > 0 }

// Next samples the next state and a dwell time (ticks to remain in the
// current state before switching) for an individual of age band ag in state
// s. ok is false when s is terminal.
func (m *Model) Next(s State, ag AgeGroup, r *stats.RNG) (next State, dwell int, ok bool) {
	ts := m.transitions[s]
	if len(ts) == 0 {
		return s, 0, false
	}
	u := r.Float64()
	acc := 0.0
	pick := len(ts) - 1
	for i, t := range ts {
		acc += t.Prob[ag]
		if u < acc {
			pick = i
			break
		}
	}
	t := ts[pick]
	d := t.Dwell[ag].Sample(r)
	ticks := int(math.Round(d))
	if ticks < 1 {
		ticks = 1
	}
	return t.To, ticks, true
}

// Validate checks structural invariants: out-probabilities sum to 1 (or the
// state is terminal), dwell distributions are present, probabilities lie in
// [0, 1], and the exposed state is reachable and not susceptible.
func (m *Model) Validate() error {
	const tol = 1e-9
	for s := State(0); s < NumStates; s++ {
		ts := m.transitions[s]
		if len(ts) == 0 {
			continue
		}
		for ag := AgeGroup(0); ag < NumAgeGroups; ag++ {
			sum := 0.0
			for _, t := range ts {
				p := t.Prob[ag]
				if p < -tol || p > 1+tol {
					return fmt.Errorf("disease: %v→%v prob %g out of [0,1] for ages %v", t.From, t.To, p, ag)
				}
				if t.Dwell[ag] == nil {
					return fmt.Errorf("disease: %v→%v missing dwell distribution for ages %v", t.From, t.To, ag)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-6 {
				return fmt.Errorf("disease: state %v out-probabilities sum to %g for ages %v", s, sum, ag)
			}
		}
	}
	if m.Transmissibility < 0 {
		return fmt.Errorf("disease: negative transmissibility %g", m.Transmissibility)
	}
	// Non-negative attributes make IsInfectious equivalent to
	// Infectivity != 0, the invariant behind the simulator's
	// infectious-neighbor counters and effective-infectivity bitset.
	for s := State(0); s < NumStates; s++ {
		if m.Attrs[s].Infectivity < 0 {
			return fmt.Errorf("disease: negative infectivity %g in state %v", m.Attrs[s].Infectivity, s)
		}
		if m.Attrs[s].Susceptibility < 0 {
			return fmt.Errorf("disease: negative susceptibility %g in state %v", m.Attrs[s].Susceptibility, s)
		}
	}
	if m.Attrs[m.ExposedState].Susceptibility > 0 {
		return fmt.Errorf("disease: exposed state %v is itself susceptible", m.ExposedState)
	}
	return nil
}

// Clone returns a deep copy of the model; the per-transition distributions
// are shared (they are immutable by convention).
func (m *Model) Clone() *Model {
	c := &Model{
		Name:             m.Name,
		Transmissibility: m.Transmissibility,
		Attrs:            m.Attrs,
		ExposedState:     m.ExposedState,
	}
	for s := range m.transitions {
		c.transitions[s] = append([]Transition(nil), m.transitions[s]...)
	}
	return c
}

// InfectiousStates returns the states with positive infectivity.
func (m *Model) InfectiousStates() []State {
	var out []State
	for s := State(0); s < NumStates; s++ {
		if m.IsInfectious(s) {
			out = append(out, s)
		}
	}
	return out
}
