package disease

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestModelJSONRoundTrip(t *testing.T) {
	orig := COVID19()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || back.Transmissibility != orig.Transmissibility {
		t.Fatal("header fields lost")
	}
	if back.ExposedState != orig.ExposedState {
		t.Fatal("exposed state lost")
	}
	for s := State(0); s < NumStates; s++ {
		if back.Attrs[s] != orig.Attrs[s] {
			t.Fatalf("attrs of %v lost: %+v vs %+v", s, back.Attrs[s], orig.Attrs[s])
		}
		bt, ot := back.Transitions(s), orig.Transitions(s)
		if len(bt) != len(ot) {
			t.Fatalf("state %v: %d transitions vs %d", s, len(bt), len(ot))
		}
		for i := range bt {
			if bt[i].To != ot[i].To || bt[i].Prob != ot[i].Prob {
				t.Fatalf("transition %v→%v changed", s, ot[i].To)
			}
		}
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Sampling behaviour survives the round trip: dwell distributions decode
// to statistically identical objects.
func TestModelJSONDwellBehaviourPreserved(t *testing.T) {
	orig := COVID19()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for s := State(0); s < NumStates; s++ {
		for i, tr := range orig.Transitions(s) {
			btr := back.Transitions(s)[i]
			for ag := AgeGroup(0); ag < NumAgeGroups; ag++ {
				r1 := stats.NewRNG(42)
				r2 := stats.NewRNG(42)
				for k := 0; k < 20; k++ {
					a := tr.Dwell[ag].Sample(r1)
					b := btr.Dwell[ag].Sample(r2)
					if a != b {
						t.Fatalf("%v→%v ages %v: dwell samples diverge (%v vs %v)", s, tr.To, ag, a, b)
					}
				}
			}
		}
	}
}

func TestModelJSONHumanReadable(t *testing.T) {
	data, err := json.Marshal(COVID19())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	// encoding/json compacts MarshalJSON output, so expect compact forms.
	for _, want := range []string{
		`"name":"covid19-cdc-best-guess"`,
		`"transmissibility":0.18`,
		`"from":"Symptomatic"`,
		`"type":"discrete"`,
		`"type":"normal"`,
		`"type":"fixed"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("encoded model missing %q", want)
		}
	}
}

func TestModelJSONRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":       `{`,
		"unknown state": `{"name":"x","transmissibility":0.1,"exposedState":"Nonsense","transitions":[]}`,
		"bad prob count": `{"name":"x","transmissibility":0.1,"exposedState":"Exposed",
			"states":[{"name":"Susceptible","susceptibility":1}],
			"transitions":[{"from":"Exposed","to":"Recovered","prob":[0.5,0.5],"dwell":[{"type":"fixed","value":1}]}]}`,
		"bad dwell type": `{"name":"x","transmissibility":0.1,"exposedState":"Exposed",
			"states":[{"name":"Susceptible","susceptibility":1}],
			"transitions":[{"from":"Exposed","to":"Recovered","prob":[1],"dwell":[{"type":"cauchy"}]}]}`,
		"invalid sums": `{"name":"x","transmissibility":0.1,"exposedState":"Exposed",
			"states":[{"name":"Susceptible","susceptibility":1}],
			"transitions":[{"from":"Exposed","to":"Recovered","prob":[0.4],"dwell":[{"type":"fixed","value":1}]}]}`,
		"normal without sd": `{"name":"x","transmissibility":0.1,"exposedState":"Exposed",
			"states":[{"name":"Susceptible","susceptibility":1}],
			"transitions":[{"from":"Exposed","to":"Recovered","prob":[1],"dwell":[{"type":"normal","mean":5}]}]}`,
	}
	for name, input := range cases {
		var m Model
		if err := json.Unmarshal([]byte(input), &m); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestSIRModelJSONRoundTrip(t *testing.T) {
	orig := SIR(0.25, 5)
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ExposedState != Symptomatic {
		t.Fatal("SIR exposed state lost")
	}
	if !back.IsInfectious(Symptomatic) || !back.IsSusceptible(Susceptible) {
		t.Fatal("SIR attrs lost")
	}
}
