package disease_test

import (
	"fmt"

	"repro/internal/disease"
	"repro/internal/stats"
)

// ExampleCOVID19 walks one individual through the disease progression.
func ExampleCOVID19() {
	m := disease.COVID19()
	fmt.Println("transmissibility:", m.Transmissibility)
	fmt.Println("exposed state:", m.ExposedState)
	// Sample a within-host trajectory for a 30-year-old.
	r := stats.NewRNG(4)
	s := disease.Exposed
	for {
		next, dwell, ok := m.Next(s, disease.AgeGroupOf(30), r)
		if !ok {
			break
		}
		fmt.Printf("%s → %s after %d days\n", s, next, dwell)
		s = next
	}
	// Output:
	// transmissibility: 0.18
	// exposed state: Exposed
	// Exposed → Asymptomatic after 6 days
	// Asymptomatic → Recovered after 4 days
}

// ExampleAgeGroupOf shows the Table III age banding.
func ExampleAgeGroupOf() {
	for _, age := range []int{3, 10, 30, 55, 80} {
		fmt.Printf("age %d → %s\n", age, disease.AgeGroupOf(age))
	}
	// Output:
	// age 3 → 0-4
	// age 10 → 5-17
	// age 30 → 18-49
	// age 55 → 50-64
	// age 80 → 65+
}
