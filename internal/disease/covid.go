package disease

import "repro/internal/stats"

// ageProb is a convenience constructor for a probability row of Table III.
func ageProb(a0, a5, a18, a50, a65 float64) [NumAgeGroups]float64 {
	return [NumAgeGroups]float64{a0, a5, a18, a50, a65}
}

// ageDwellNorm builds age-specific truncated-normal dwell distributions
// (Table III rows given as dt-mean / dt-std dev pairs). Dwell samples are
// truncated to [0.5, 60] days; the simulator rounds to whole ticks with a
// minimum of one.
func ageDwellNorm(means, sds [NumAgeGroups]float64) [NumAgeGroups]stats.Dist {
	var out [NumAgeGroups]stats.Dist
	for i := range out {
		out[i] = stats.TruncNormal{Mean: means[i], SD: sds[i], Lo: 0.5, Hi: 60}
	}
	return out
}

func uniformVals(v float64) [NumAgeGroups]float64 {
	return [NumAgeGroups]float64{v, v, v, v, v}
}

// COVID19 returns the paper's COVID-19 disease model (Figure 12, Tables III
// and IV). The probability columns of Table III reconstruct exactly — the
// three Symptomatic out-probabilities and the two out-probabilities of each
// of Attended(D) and Hospitalized / Hospitalized(D) sum to 1.0 in every age
// band. Two dwell times that the published table renders ambiguously
// (Exposed→Presymptomatic, Presymptomatic→Symptomatic) are fixed at 1 and 2
// days respectively, matching the CDC incubation decomposition the model is
// built from; DESIGN.md records the substitution.
func COVID19() *Model {
	m := &Model{
		Name:             "covid19-cdc-best-guess",
		Transmissibility: 0.18, // Table IV "transmissability"; calibration parameter TAU
		ExposedState:     Exposed,
	}
	// Table IV: per-state infectivity and susceptibility.
	m.Attrs[Presymptomatic] = StateAttr{Infectivity: 0.8}
	m.Attrs[Symptomatic] = StateAttr{Infectivity: 1.0}
	m.Attrs[Asymptomatic] = StateAttr{Infectivity: 1.0}
	m.Attrs[Susceptible] = StateAttr{Susceptibility: 1.0}
	m.Attrs[RxFailure] = StateAttr{Susceptibility: 1.0}

	// ---- Table III, asymptomatic branch ----
	// Exposed → Asymptomatic: prob 0.35, dwell N(5, 1).
	m.AddTransition(Transition{
		From: Exposed, To: Asymptomatic,
		Prob:  uniformProb(0.35),
		Dwell: ageDwellNorm(uniformVals(5), uniformVals(1)),
	})
	// Asymptomatic → Recovered: prob 1, dwell N(5, 1).
	m.AddTransition(Transition{
		From: Asymptomatic, To: Recovered,
		Prob:  uniformProb(1),
		Dwell: ageDwellNorm(uniformVals(5), uniformVals(1)),
	})

	// ---- Symptomatic branch ----
	// Exposed → Presymptomatic: prob 0.65, dwell fixed 1 day.
	m.AddTransition(Transition{
		From: Exposed, To: Presymptomatic,
		Prob:  uniformProb(0.65),
		Dwell: uniformDwell(stats.Fixed{V: 1}),
	})
	// Presymptomatic → Symptomatic: prob 1, dwell fixed 2 days.
	m.AddTransition(Transition{
		From: Presymptomatic, To: Symptomatic,
		Prob:  uniformProb(1),
		Dwell: uniformDwell(stats.Fixed{V: 2}),
	})

	// Symptomatic → Attended (recovering track): age-specific probabilities;
	// discrete dwell {1:0.175, 2:0.175, 3:0.1, 4:0.1, 5:0.1, 6:0.1, 7:0.1,
	// 8:0.05, 9:0.05, 10:0.05}.
	sympDwell, err := stats.NewDiscrete(
		[]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		[]float64{0.175, 0.175, 0.1, 0.1, 0.1, 0.1, 0.1, 0.05, 0.05, 0.05},
	)
	if err != nil {
		panic("disease: bad discrete dwell: " + err.Error())
	}
	m.AddTransition(Transition{
		From: Symptomatic, To: Attended,
		Prob:  ageProb(0.9594, 0.9894, 0.9594, 0.912, 0.788),
		Dwell: uniformDwell(sympDwell),
	})
	// Symptomatic → Attended(D) (death track): fixed 2 days.
	m.AddTransition(Transition{
		From: Symptomatic, To: AttendedD,
		Prob:  ageProb(0.0006, 0.0006, 0.0006, 0.003, 0.017),
		Dwell: uniformDwell(stats.Fixed{V: 2}),
	})
	// Symptomatic → Attended(H) (hospitalization track): fixed 1 day.
	m.AddTransition(Transition{
		From: Symptomatic, To: AttendedH,
		Prob:  ageProb(0.04, 0.01, 0.04, 0.085, 0.195),
		Dwell: uniformDwell(stats.Fixed{V: 1}),
	})

	// Attended → Recovered: prob 1, dwell N(5, 1).
	m.AddTransition(Transition{
		From: Attended, To: Recovered,
		Prob:  uniformProb(1),
		Dwell: ageDwellNorm(uniformVals(5), uniformVals(1)),
	})

	// ---- Death track ----
	// Attended(D) → Hospitalized(D): prob 0.95, fixed 2 days.
	m.AddTransition(Transition{
		From: AttendedD, To: HospitalizedD,
		Prob:  uniformProb(0.95),
		Dwell: uniformDwell(stats.Fixed{V: 2}),
	})
	// Attended(D) → Death directly: prob 0.05, fixed 8 days.
	m.AddTransition(Transition{
		From: AttendedD, To: Dead,
		Prob:  uniformProb(0.05),
		Dwell: uniformDwell(stats.Fixed{V: 8}),
	})
	// Hospitalized(D) → Ventilated(D): age-specific, fixed 2 days.
	m.AddTransition(Transition{
		From: HospitalizedD, To: VentilatedD,
		Prob:  ageProb(0.06, 0.06, 0.06, 0.15, 0.225),
		Dwell: uniformDwell(stats.Fixed{V: 2}),
	})
	// Hospitalized(D) → Death: complement, fixed 6 days.
	m.AddTransition(Transition{
		From: HospitalizedD, To: Dead,
		Prob:  ageProb(0.94, 0.94, 0.94, 0.85, 0.775),
		Dwell: uniformDwell(stats.Fixed{V: 6}),
	})
	// Ventilated(D) → Death: prob 1, fixed 4 days.
	m.AddTransition(Transition{
		From: VentilatedD, To: Dead,
		Prob:  uniformProb(1),
		Dwell: uniformDwell(stats.Fixed{V: 4}),
	})

	// ---- Hospitalization track ----
	// Attended(H) → Hospitalized: prob 1, dwell N(means, sds) by age.
	m.AddTransition(Transition{
		From: AttendedH, To: Hospitalized,
		Prob: uniformProb(1),
		Dwell: ageDwellNorm(
			[NumAgeGroups]float64{5, 5, 5, 5.3, 4.2},
			[NumAgeGroups]float64{4.6, 4.6, 4.6, 5.2, 5.2},
		),
	})
	// Hospitalized → Recovered.
	m.AddTransition(Transition{
		From: Hospitalized, To: Recovered,
		Prob: ageProb(0.94, 0.94, 0.94, 0.85, 0.775),
		Dwell: ageDwellNorm(
			[NumAgeGroups]float64{3.1, 3.1, 3.1, 7.8, 6.5},
			[NumAgeGroups]float64{3.7, 3.7, 3.7, 6.3, 4.9},
		),
	})
	// Hospitalized → Ventilated: dwell N(1, 0.2).
	m.AddTransition(Transition{
		From: Hospitalized, To: Ventilated,
		Prob:  ageProb(0.06, 0.06, 0.06, 0.15, 0.225),
		Dwell: ageDwellNorm(uniformVals(1), uniformVals(0.2)),
	})
	// Ventilated → Recovered.
	m.AddTransition(Transition{
		From: Ventilated, To: Recovered,
		Prob: uniformProb(1),
		Dwell: ageDwellNorm(
			[NumAgeGroups]float64{2.1, 2.1, 2.1, 6.8, 5.5},
			[NumAgeGroups]float64{3.7, 3.7, 3.7, 6.3, 4.9},
		),
	})
	return m
}

// COVID19Waning returns the COVID-19 model with waning immunity: Recovered
// individuals return to the susceptible RxFailure state (Table IV gives
// RxFailure susceptibility 1.0) after a dwell of waningDays ± 20%. This is
// the model variant behind reinfection and endemic-regime studies — the
// paper's conclusion anticipates "a second, or possibly third, wave".
func COVID19Waning(waningDays float64) *Model {
	m := COVID19()
	m.Name = "covid19-waning"
	if waningDays <= 0 {
		waningDays = 180
	}
	m.AddTransition(Transition{
		From: Recovered, To: RxFailure,
		Prob: uniformProb(1),
		Dwell: uniformDwell(stats.TruncNormal{
			Mean: waningDays, SD: 0.2 * waningDays, Lo: 7, Hi: 5 * waningDays,
		}),
	})
	return m
}

// SIR returns the minimal three-state model of Appendix A, useful for tests
// and for the illustrative five-person example of Figure 11. The infectious
// period is geometric-ish via a fixed dwell of the given days.
func SIR(transmissibility float64, infectiousDays float64) *Model {
	m := &Model{
		Name:             "sir",
		Transmissibility: transmissibility,
		ExposedState:     Symptomatic, // direct S → I
	}
	m.Attrs[Susceptible] = StateAttr{Susceptibility: 1}
	m.Attrs[Symptomatic] = StateAttr{Infectivity: 1}
	m.AddTransition(Transition{
		From: Symptomatic, To: Recovered,
		Prob:  uniformProb(1),
		Dwell: uniformDwell(stats.Fixed{V: infectiousDays}),
	})
	return m
}

// SEIR returns a four-state model (Susceptible → Exposed → Symptomatic →
// Recovered) used by unit tests and by cross-checks against the
// metapopulation model.
func SEIR(transmissibility, latentDays, infectiousDays float64) *Model {
	m := &Model{
		Name:             "seir",
		Transmissibility: transmissibility,
		ExposedState:     Exposed,
	}
	m.Attrs[Susceptible] = StateAttr{Susceptibility: 1}
	m.Attrs[Symptomatic] = StateAttr{Infectivity: 1}
	m.AddTransition(Transition{
		From: Exposed, To: Symptomatic,
		Prob:  uniformProb(1),
		Dwell: uniformDwell(stats.Fixed{V: latentDays}),
	})
	m.AddTransition(Transition{
		From: Symptomatic, To: Recovered,
		Prob:  uniformProb(1),
		Dwell: uniformDwell(stats.Fixed{V: infectiousDays}),
	})
	return m
}
