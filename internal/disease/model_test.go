package disease

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestCOVID19Validates(t *testing.T) {
	if err := COVID19().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDiseaseModelMatchesPaper pins the Table III / Table IV values the
// extraction recovered unambiguously.
func TestDiseaseModelMatchesPaper(t *testing.T) {
	m := COVID19()
	if m.Transmissibility != 0.18 {
		t.Errorf("transmissibility %v want 0.18 (Table IV)", m.Transmissibility)
	}
	if m.Attrs[Presymptomatic].Infectivity != 0.8 {
		t.Errorf("presymptomatic infectivity %v want 0.8", m.Attrs[Presymptomatic].Infectivity)
	}
	if m.Attrs[Symptomatic].Infectivity != 1.0 || m.Attrs[Asymptomatic].Infectivity != 1.0 {
		t.Error("symptomatic/asymptomatic infectivity should be 1.0")
	}
	if m.Attrs[Susceptible].Susceptibility != 1.0 || m.Attrs[RxFailure].Susceptibility != 1.0 {
		t.Error("susceptible/RxFailure susceptibility should be 1.0")
	}
	// Exposed branch split: 0.35 asymptomatic / 0.65 presymptomatic.
	var pa, pp float64
	for _, tr := range m.Transitions(Exposed) {
		switch tr.To {
		case Asymptomatic:
			pa = tr.Prob[Age18to49]
		case Presymptomatic:
			pp = tr.Prob[Age18to49]
		}
	}
	if pa != 0.35 || pp != 0.65 {
		t.Errorf("exposed split %v/%v want 0.35/0.65", pa, pp)
	}
	// Symptomatic out-probabilities by age band (Table III).
	wantAttd := [NumAgeGroups]float64{0.9594, 0.9894, 0.9594, 0.912, 0.788}
	wantAttdD := [NumAgeGroups]float64{0.0006, 0.0006, 0.0006, 0.003, 0.017}
	wantAttdH := [NumAgeGroups]float64{0.04, 0.01, 0.04, 0.085, 0.195}
	for _, tr := range m.Transitions(Symptomatic) {
		var want [NumAgeGroups]float64
		switch tr.To {
		case Attended:
			want = wantAttd
		case AttendedD:
			want = wantAttdD
		case AttendedH:
			want = wantAttdH
		default:
			t.Fatalf("unexpected symptomatic transition to %v", tr.To)
		}
		if tr.Prob != want {
			t.Errorf("Symptomatic→%v probs %v want %v", tr.To, tr.Prob, want)
		}
	}
}

// TestFig12ModelStructure verifies the shape of the progression diagram:
// which states are terminal, which are infectious, and that every
// non-terminal state reaches a terminal one.
func TestFig12ModelStructure(t *testing.T) {
	m := COVID19()
	for _, s := range []State{Recovered, Dead} {
		if !m.IsTerminal(s) {
			t.Errorf("%v should be terminal", s)
		}
	}
	for _, s := range []State{Exposed, Symptomatic, Hospitalized, HospitalizedD} {
		if m.IsTerminal(s) {
			t.Errorf("%v should not be terminal", s)
		}
	}
	inf := m.InfectiousStates()
	if len(inf) != 3 {
		t.Fatalf("infectious states %v want exactly {Presymptomatic, Symptomatic, Asymptomatic}", inf)
	}
	// Reachability of a terminal state from Exposed.
	visited := map[State]bool{}
	var reachTerminal func(s State) bool
	reachTerminal = func(s State) bool {
		if m.IsTerminal(s) {
			return true
		}
		if visited[s] {
			return false
		}
		visited[s] = true
		for _, tr := range m.Transitions(s) {
			if reachTerminal(tr.To) {
				return true
			}
		}
		return false
	}
	if !reachTerminal(Exposed) {
		t.Fatal("no terminal state reachable from Exposed")
	}
	// The death track never reaches Recovered.
	for _, s := range []State{AttendedD, HospitalizedD, VentilatedD} {
		stack := []State{s}
		seen := map[State]bool{}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[cur] {
				continue
			}
			seen[cur] = true
			if cur == Recovered {
				t.Fatalf("death-track state %v reaches Recovered", s)
			}
			for _, tr := range m.Transitions(cur) {
				stack = append(stack, tr.To)
			}
		}
	}
}

func TestAgeGroupOf(t *testing.T) {
	cases := []struct {
		age  int
		want AgeGroup
	}{
		{0, Age0to4}, {4, Age0to4}, {5, Age5to17}, {17, Age5to17},
		{18, Age18to49}, {49, Age18to49}, {50, Age50to64}, {64, Age50to64},
		{65, Age65Plus}, {99, Age65Plus},
	}
	for _, c := range cases {
		if got := AgeGroupOf(c.age); got != c.want {
			t.Errorf("AgeGroupOf(%d) = %v want %v", c.age, got, c.want)
		}
	}
}

func TestNextTerminal(t *testing.T) {
	m := COVID19()
	r := stats.NewRNG(1)
	if _, _, ok := m.Next(Recovered, Age18to49, r); ok {
		t.Fatal("Next from terminal state returned ok")
	}
}

func TestNextRespectsProbabilities(t *testing.T) {
	m := COVID19()
	r := stats.NewRNG(2)
	const n = 100000
	counts := map[State]int{}
	for i := 0; i < n; i++ {
		next, dwell, ok := m.Next(Exposed, Age18to49, r)
		if !ok {
			t.Fatal("Exposed should progress")
		}
		if dwell < 1 {
			t.Fatalf("dwell %d < 1", dwell)
		}
		counts[next]++
	}
	asymFrac := float64(counts[Asymptomatic]) / n
	if math.Abs(asymFrac-0.35) > 0.01 {
		t.Fatalf("asymptomatic fraction %v want 0.35", asymFrac)
	}
}

// Run many full progressions and check the absorbing distribution: death
// fraction among 65+ symptomatic-branch cases must exceed that of children.
func TestProgressionMortalityGradient(t *testing.T) {
	m := COVID19()
	deathFrac := func(ag AgeGroup, seed uint64) float64 {
		r := stats.NewRNG(seed)
		const n = 30000
		dead := 0
		for i := 0; i < n; i++ {
			s := Exposed
			for steps := 0; steps < 100; steps++ {
				next, _, ok := m.Next(s, ag, r)
				if !ok {
					break
				}
				s = next
			}
			if s == Dead {
				dead++
			}
		}
		return float64(dead) / n
	}
	young := deathFrac(Age5to17, 3)
	old := deathFrac(Age65Plus, 4)
	if old <= young*5 {
		t.Fatalf("mortality gradient too weak: young %v old %v", young, old)
	}
	if old < 0.01 || old > 0.25 {
		t.Fatalf("65+ infection fatality %v outside plausible band", old)
	}
}

// Every progression terminates in Recovered or Dead within a bounded number
// of steps (no cycles in the COVID model).
func TestProgressionTerminatesQuick(t *testing.T) {
	m := COVID19()
	err := quick.Check(func(seed uint32, agRaw uint8) bool {
		r := stats.NewRNG(uint64(seed))
		ag := AgeGroup(agRaw % uint8(NumAgeGroups))
		s := Exposed
		for steps := 0; steps < 64; steps++ {
			next, _, ok := m.Next(s, ag, r)
			if !ok {
				return s == Recovered || s == Dead
			}
			s = next
		}
		return false
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadSum(t *testing.T) {
	m := &Model{Name: "bad", ExposedState: Exposed}
	m.Attrs[Susceptible] = StateAttr{Susceptibility: 1}
	m.AddTransition(Transition{
		From: Exposed, To: Recovered,
		Prob:  uniformProb(0.5), // sums to 0.5, not 1
		Dwell: uniformDwell(stats.Fixed{V: 1}),
	})
	if err := m.Validate(); err == nil {
		t.Fatal("bad probability sum accepted")
	}
}

func TestValidateCatchesMissingDwell(t *testing.T) {
	m := &Model{Name: "bad", ExposedState: Exposed}
	tr := Transition{From: Exposed, To: Recovered, Prob: uniformProb(1)}
	m.AddTransition(tr)
	if err := m.Validate(); err == nil {
		t.Fatal("missing dwell accepted")
	}
}

func TestValidateCatchesSusceptibleExposedState(t *testing.T) {
	m := SIR(0.1, 3)
	m.ExposedState = Susceptible
	if err := m.Validate(); err == nil {
		t.Fatal("susceptible exposed state accepted")
	}
}

func TestSIRAndSEIRValidate(t *testing.T) {
	if err := SIR(0.2, 4).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := SEIR(0.2, 2, 4).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := COVID19()
	c := m.Clone()
	c.Transmissibility = 0.5
	c.AddTransition(Transition{From: Recovered, To: Susceptible,
		Prob: uniformProb(1), Dwell: uniformDwell(stats.Fixed{V: 30})})
	if m.Transmissibility != 0.18 {
		t.Fatal("clone mutated original transmissibility")
	}
	if !m.IsTerminal(Recovered) {
		t.Fatal("clone mutated original transitions")
	}
	if c.IsTerminal(Recovered) {
		t.Fatal("clone did not take new transition")
	}
}

func TestStateStrings(t *testing.T) {
	if Susceptible.String() != "Susceptible" || Dead.String() != "Dead" {
		t.Error("state names wrong")
	}
	if State(200).String() == "" {
		t.Error("out-of-range state name empty")
	}
	if Age65Plus.String() != "65+" || AgeGroup(99).String() == "" {
		t.Error("age group names wrong")
	}
}
