package repro

import (
	"fmt"
	"testing"

	"repro/internal/calib"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/disease"
	"repro/internal/lhs"
	"repro/internal/linalg"
	"repro/internal/metapop"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/surveillance"
	"repro/internal/synthpop"
	"repro/internal/transfer"
)

// BenchmarkTableI regenerates Table I: the three representative workflows,
// their simulation counts, and the raw/summarized output volumes, by
// executing each as a simulated night on the remote cluster.
func BenchmarkTableI(b *testing.B) {
	for _, spec := range core.TableI() {
		b.Run(spec.Kind.String(), func(b *testing.B) {
			var rep *core.NightReport
			for i := 0; i < b.N; i++ {
				p := core.NewPipeline(uint64(i) + 1)
				var err error
				rep, err = p.RunNight(core.NightConfig{Spec: spec, Heuristic: "FFDT-DC", Seed: uint64(i), Day: 1})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(spec.Simulations()), "simulations")
			b.ReportMetric(float64(rep.RawBytes)/float64(transfer.TB), "raw_TB")
			b.ReportMetric(float64(rep.SummaryBytes)/float64(transfer.GB), "summary_GB")
			b.ReportMetric(100*rep.Utilization, "util_%")
		})
	}
}

// BenchmarkTableII regenerates Table II's data-movement rows: modeled
// transfer times for the one-time staging and the daily bands.
func BenchmarkTableII(b *testing.B) {
	link := transfer.DefaultLink()
	rows := []struct {
		name  string
		bytes int64
	}{
		{"network-staging-2TB", 2 * transfer.TB},
		{"daily-configs-min-100MB", 100 * transfer.MB},
		{"daily-configs-max-8.7GB", 87 * transfer.GB / 10},
		{"daily-summaries-min-120MB", 120 * transfer.MB},
		{"daily-summaries-max-70GB", 70 * transfer.GB},
	}
	for _, row := range rows {
		b.Run(row.name, func(b *testing.B) {
			var dur float64
			for i := 0; i < b.N; i++ {
				var err error
				dur, err = link.Duration(row.bytes)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(dur/60, "transfer_min")
		})
	}
	b.Run("cores", func(b *testing.B) {
		var cores int
		for i := 0; i < b.N; i++ {
			cores = cluster.Bridges().TotalCores()
		}
		b.ReportMetric(float64(cores), "remote_cores")
	})
}

// BenchmarkFig13CountyCurves regenerates Figures 13 and 14: the
// county-level and state-level cumulative confirmed-case ground truth
// (3140 counties × 210 days).
func BenchmarkFig13CountyCurves(b *testing.B) {
	b.Run("CA-counties", func(b *testing.B) {
		ca, err := synthpop.StateByCode("CA")
		if err != nil {
			b.Fatal(err)
		}
		var truth *surveillance.StateTruth
		for i := 0; i < b.N; i++ {
			truth, err = surveillance.GenerateState(ca, surveillance.DefaultConfig(3))
			if err != nil {
				b.Fatal(err)
			}
		}
		cum := truth.StateCumulative()
		b.ReportMetric(float64(len(truth.Counties)), "counties")
		b.ReportMetric(cum[len(cum)-1], "final_cases")
	})
	b.Run("US-all-states", func(b *testing.B) {
		cfg := surveillance.DefaultConfig(4)
		var us map[string]*surveillance.StateTruth
		for i := 0; i < b.N; i++ {
			var err error
			us, err = surveillance.GenerateUS(cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
		counties := 0
		withCases := 0
		for _, st := range us {
			counties += len(st.Counties)
			withCases += st.CountiesWithCases(92) // April 22 ≈ day 92
		}
		b.ReportMetric(float64(counties), "counties")
		b.ReportMetric(float64(withCases), "counties_with_cases_apr22")
	})
}

// BenchmarkFig15PriorPosterior regenerates Figure 15: the 100-cell LHS
// prior and the calibrated posterior for Virginia, reporting the
// distribution changes the figure shows (tightened TAU/SYMP, negative
// correlation).
func BenchmarkFig15PriorPosterior(b *testing.B) {
	var cal *core.CalibrationOutcome
	for i := 0; i < b.N; i++ {
		p := core.NewPipeline(2020, core.WithScale(20000))
		var err error
		cal, err = p.RunCalibrationWorkflow(core.CalibrationConfig{
			State: "VA", Cells: 100, Days: 70,
			Steps: 2000, PosteriorSize: 100, SigmaDeltaMax: 0.1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	tau := make([]float64, len(cal.Posterior))
	symp := make([]float64, len(cal.Posterior))
	priorTau := make([]float64, len(cal.Prior))
	for i, pr := range cal.Posterior {
		tau[i], symp[i] = pr.TAU, pr.SYMP
	}
	for i, pr := range cal.Prior {
		priorTau[i] = pr.TAU
	}
	b.ReportMetric(stats.StdDev(priorTau), "prior_tau_sd")
	b.ReportMetric(stats.StdDev(tau), "post_tau_sd")
	b.ReportMetric(stats.Correlation(tau, symp), "tau_symp_corr")
}

// BenchmarkFig16EmulatorFit regenerates Figure 16: the GP emulator's 95%
// band against the ground truth, reporting the coverage fraction the
// paper's visual check assesses.
func BenchmarkFig16EmulatorFit(b *testing.B) {
	var coverage float64
	for i := 0; i < b.N; i++ {
		p := core.NewPipeline(2021, core.WithScale(20000))
		cal, err := p.RunCalibrationWorkflow(core.CalibrationConfig{
			State: "VA", Cells: 60, Days: 70,
			Steps: 800, PosteriorSize: 50,
		})
		if err != nil {
			b.Fatal(err)
		}
		mean := cal.Posterior[0]
		coverage = cal.Calibrator.PredictiveCoverage(
			[]float64{mean.TAU, mean.SYMP, mean.SHCompliance, mean.VHICompliance},
			cal.MeanSigmaDelta, cal.MeanSigmaEps)
	}
	b.ReportMetric(100*coverage, "band_coverage_%")
}

// BenchmarkFig17Forecast regenerates Figure 17: the eight-week Virginia
// forecast with a 95% band from the posterior ensemble.
func BenchmarkFig17Forecast(b *testing.B) {
	configs := []core.Params{
		{TAU: 0.17, SYMP: 0.6, SHCompliance: 0.5, VHICompliance: 0.5},
		{TAU: 0.19, SYMP: 0.65, SHCompliance: 0.45, VHICompliance: 0.55},
		{TAU: 0.21, SYMP: 0.55, SHCompliance: 0.55, VHICompliance: 0.45},
		{TAU: 0.23, SYMP: 0.6, SHCompliance: 0.4, VHICompliance: 0.6},
	}
	var out *core.PredictionOutcome
	for i := 0; i < b.N; i++ {
		p := core.NewPipeline(2022, core.WithScale(20000))
		var err error
		out, err = p.RunPredictionWorkflow(core.PredictionConfig{
			State: "VA", Configs: configs, Replicates: 5, Days: 126,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := 125
	b.ReportMetric(out.Confirmed.Median[last], "median_cases")
	b.ReportMetric(out.Confirmed.Hi[last]-out.Confirmed.Lo[last], "band_width")
	b.ReportMetric(float64(len(out.CountyMedian)), "county_products")
}

// BenchmarkSchedulerAblation compares FIFO, NFDT-DC and FFDT-DC on the
// strict strip-packing metric plus the executed utilization — the ablation
// DESIGN.md calls out for the scheduling design choice.
func BenchmarkSchedulerAblation(b *testing.B) {
	w := sched.Workload{Cells: 12, Replicates: 15,
		Time: sched.DefaultTimeModel(), MaxInterventionFactor: 4}
	tasks := w.Tasks(stats.NewRNG(77))
	c := sched.Constraints{TotalNodes: 720, DBBound: sched.DefaultDBBounds(16)}
	algos := []struct {
		name string
		pack func([]sched.Task, sched.Constraints) (*sched.Schedule, error)
	}{
		{"FIFO", sched.FIFO},
		{"NFDT-DC", sched.NFDTDC},
		{"FFDT-DC", sched.FFDTDC},
	}
	for _, a := range algos {
		b.Run(a.name, func(b *testing.B) {
			var s *sched.Schedule
			for i := 0; i < b.N; i++ {
				var err error
				s, err = a.pack(tasks, c)
				if err != nil {
					b.Fatal(err)
				}
			}
			res, err := cluster.ExecuteBackfill(cluster.FlattenSchedule(s), c, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*s.Utilization(), "strip_util_%")
			b.ReportMetric(100*res.Utilization, "backfill_util_%")
			b.ReportMetric(float64(len(s.Levels)), "levels")
		})
	}
}

// BenchmarkPartitionCache quantifies the static-partition design choice:
// partitioning cost versus a (cached) reuse, the reason the paper
// pre-partitions networks ("partitioning the network ... for California
// alone would take over one hour").
func BenchmarkPartitionCache(b *testing.B) {
	net := benchNetwork(b, "CA", 2500)
	b.Run("partition", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			net.PartitionNodes(16, 0.01)
		}
	})
	b.Run("simulate-per-partitioning", func(b *testing.B) {
		// One 40-day simulation — the unit of work a cached partition
		// amortizes against.
		for i := 0; i < b.N; i++ {
			runSim(b, net, 8, nil, 40, 3)
		}
	})
}

// BenchmarkNodeCategoryAblation compares the paper's 3-category node
// assignment (small=2, medium=4, large=6) against a uniform assignment, on
// executed utilization and makespan.
func BenchmarkNodeCategoryAblation(b *testing.B) {
	c := sched.Constraints{TotalNodes: 720, DBBound: sched.DefaultDBBounds(16)}
	build := func(uniform bool) []sched.Task {
		w := sched.Workload{Cells: 12, Replicates: 15,
			Time: sched.DefaultTimeModel(), MaxInterventionFactor: 4}
		tasks := w.Tasks(stats.NewRNG(88))
		if uniform {
			for i := range tasks {
				// Same node count everywhere; rescale time so total
				// work stays comparable.
				tasks[i].Time *= float64(tasks[i].Nodes) / 4
				tasks[i].Nodes = 4
			}
		}
		return tasks
	}
	for _, mode := range []string{"categorized", "uniform"} {
		b.Run(mode, func(b *testing.B) {
			var res cluster.ExecResult
			for i := 0; i < b.N; i++ {
				tasks := build(mode == "uniform")
				s, err := sched.FFDTDC(tasks, c)
				if err != nil {
					b.Fatal(err)
				}
				res, err = cluster.ExecuteBackfill(cluster.FlattenSchedule(s), c, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*res.Utilization, "util_%")
			b.ReportMetric(res.Makespan/3600, "makespan_h")
		})
	}
}

// BenchmarkEmulatorVsDirect compares GP-emulator calibration against
// direct-simulation MCMC on the metapopulation model — the paper's
// motivation for the emulator ("when running the simulation is expensive,
// an emulator can be used in place of the actual simulation").
func BenchmarkEmulatorVsDirect(b *testing.B) {
	ri, err := synthpop.StateByCode("RI")
	if err != nil {
		b.Fatal(err)
	}
	model, err := metapop.NewFromState(ri, 0.85)
	if err != nil {
		b.Fatal(err)
	}
	trueP := metapop.Params{Beta: 0.45, Sigma: 1.0 / 3, Gamma: 1.0 / 5, Detect: 0.25}
	seeds := []metapop.Seed{{CountyIndex: 0, Infectious: 10}}
	traj, err := model.Run(trueP, 100, seeds, nil)
	if err != nil {
		b.Fatal(err)
	}
	truth := &surveillance.StateTruth{State: "RI", Days: 100}
	for c := range model.Counties {
		truth.Counties = append(truth.Counties, surveillance.CountySeries{
			FIPS: model.Counties[c].FIPS, Daily: traj.NewConfirmed[c],
		})
	}
	b.Run("direct-mcmc", func(b *testing.B) {
		var res *metapop.CalibResult
		for i := 0; i < b.N; i++ {
			var err error
			res, err = model.Calibrate(truth, metapop.CalibConfig{
				BetaLo: 0.2, BetaHi: 0.8, DetectLo: 0.05, DetectHi: 0.6,
				Sigma: trueP.Sigma, Gamma: trueP.Gamma,
				Days: 100, Seeds: seeds, Steps: 300, BurnIn: 300, Seed: 5,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(res.MAP.Beta, "map_beta")
	})
	b.Run("emulator", func(b *testing.B) {
		// Emulate the state cumulative curve over beta and calibrate on
		// the emulator instead of the simulator.
		var best float64
		for i := 0; i < b.N; i++ {
			best = calibrateViaEmulator(b, model, trueP, seeds)
		}
		b.ReportMetric(best, "map_beta")
	})
}

// calibrateViaEmulator builds a small emulator over beta and runs the
// GPMSA-style calibration against the truth.
func calibrateViaEmulator(b *testing.B, model *metapop.Model, trueP metapop.Params, seeds []metapop.Seed) float64 {
	b.Helper()
	r := stats.NewRNG(6)
	d, err := calib.NewLHSDesign(r, 30, []lhs.Range{{Name: "beta", Lo: 0.2, Hi: 0.8}})
	if err != nil {
		b.Fatal(err)
	}
	obs := calib.Log1p(trajCum(b, model, trueP, seeds))
	d.Outputs = linalg.NewMatrix(30, len(obs))
	for i, th := range d.Thetas {
		p := trueP
		p.Beta = th[0]
		cum := calib.Log1p(trajCum(b, model, p, seeds))
		for j, v := range cum {
			d.Outputs.Set(i, j, v)
		}
	}
	cal, err := calib.Fit(d, obs, calib.Config{NumBasis: 4})
	if err != nil {
		b.Fatal(err)
	}
	post, err := cal.Sample(calib.Config{Steps: 500, BurnIn: 300, Seed: 7}, 50)
	if err != nil {
		b.Fatal(err)
	}
	return post.MAPTheta[0]
}

func trajCum(b *testing.B, model *metapop.Model, p metapop.Params, seeds []metapop.Seed) []float64 {
	b.Helper()
	traj, err := model.Run(p, 100, seeds, nil)
	if err != nil {
		b.Fatal(err)
	}
	return traj.StateCumConfirmed()
}

// BenchmarkDBConnectionBound sweeps B(T[r]), showing how the database
// constraint throttles the nightly throughput — the parameter that defines
// DB-WMP.
func BenchmarkDBConnectionBound(b *testing.B) {
	for _, bound := range []int{4, 8, 16, 32, 1000} {
		b.Run(fmt.Sprintf("B=%d", bound), func(b *testing.B) {
			var res cluster.ExecResult
			for i := 0; i < b.N; i++ {
				w := sched.Workload{Cells: 12, Replicates: 15,
					Time: sched.DefaultTimeModel(), MaxInterventionFactor: 4}
				tasks := w.Tasks(stats.NewRNG(12))
				c := sched.Constraints{TotalNodes: 720, DBBound: sched.DefaultDBBounds(bound)}
				s, err := sched.FFDTDC(tasks, c)
				if err != nil {
					b.Fatal(err)
				}
				res, err = cluster.ExecuteBackfill(cluster.FlattenSchedule(s), c, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*res.Utilization, "util_%")
			b.ReportMetric(res.Makespan/3600, "makespan_h")
		})
	}
}

// BenchmarkTableIIIProgression exercises the Table III disease-progression
// machinery: full within-host trajectories across age bands.
func BenchmarkTableIIIProgression(b *testing.B) {
	m := disease.COVID19()
	r := stats.NewRNG(13)
	b.ReportAllocs()
	dead := 0
	for i := 0; i < b.N; i++ {
		ag := disease.AgeGroup(i % int(disease.NumAgeGroups))
		s := disease.Exposed
		for {
			next, _, ok := m.Next(s, ag, r)
			if !ok {
				break
			}
			s = next
		}
		if s == disease.Dead {
			dead++
		}
	}
	if b.N > 1000 {
		b.ReportMetric(100*float64(dead)/float64(b.N), "death_%")
	}
}
