// Virginia calibration — the paper's case study 3 (and Figures 15–17):
// calibrate the agent-based model for Virginia against cumulative confirmed
// case counts, then predict the next eight weeks with a 95% band.
//
// The workflow mirrors the paper exactly: a 100-configuration Latin
// hypercube prior over (TAU, SYMP, SH compliance, VHI compliance) with SC
// at 100% compliance; EpiHiper simulation of every prior cell; Bayesian
// calibration through a pη=5 GP emulator; 100 posterior configurations;
// and a re-simulated posterior ensemble for the forecast.
//
//	go run ./examples/virginia_calibration
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	p := core.NewPipeline(2020, core.WithScale(20000))

	fmt.Println("=== case study 3: calibrating the agent-based model for Virginia ===")
	fmt.Println("prior design: 100 LHS cells over (TAU, SYMP, SH, VHI); SC at 100%")
	cal, err := p.RunCalibrationWorkflow(core.CalibrationConfig{
		State:         "VA",
		Cells:         100, // the case study's 100 prior configurations
		Days:          70,  // data through "April 11" ≈ day 70 of the season
		Steps:         3000,
		PosteriorSize: 100,
		// A tight discrepancy budget makes the parameters, not δ,
		// explain the curve — the regime in which Figure 15's negative
		// TAU–SYMP correlation appears.
		SigmaDeltaMax: 0.1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// --- Figure 15: prior vs posterior parameter distributions ---
	fmt.Println("\n--- Figure 15: prior → posterior ---")
	show := func(name string, get func(core.Params) float64) ([]float64, []float64) {
		prior := make([]float64, len(cal.Prior))
		post := make([]float64, len(cal.Posterior))
		for i, pr := range cal.Prior {
			prior[i] = get(pr)
		}
		for i, pr := range cal.Posterior {
			post[i] = get(pr)
		}
		fmt.Printf("%-5s prior %.3f±%.3f → posterior %.3f±%.3f\n",
			name, stats.Mean(prior), stats.StdDev(prior), stats.Mean(post), stats.StdDev(post))
		return prior, post
	}
	_, postTau := show("TAU", func(p core.Params) float64 { return p.TAU })
	_, postSymp := show("SYMP", func(p core.Params) float64 { return p.SYMP })
	show("SH", func(p core.Params) float64 { return p.SHCompliance })
	show("VHI", func(p core.Params) float64 { return p.VHICompliance })
	fmt.Printf("corr(TAU, SYMP) in posterior: %.3f  (paper: negatively correlated)\n",
		stats.Correlation(postTau, postSymp))

	// --- Figure 16: emulator fit at the posterior mean ---
	mean := core.Params{
		TAU: stats.Mean(postTau), SYMP: stats.Mean(postSymp),
	}
	var shSum, vhiSum float64
	for _, pr := range cal.Posterior {
		shSum += pr.SHCompliance
		vhiSum += pr.VHICompliance
	}
	mean.SHCompliance = shSum / float64(len(cal.Posterior))
	mean.VHICompliance = vhiSum / float64(len(cal.Posterior))
	theta := []float64{mean.TAU, mean.SYMP, mean.SHCompliance, mean.VHICompliance}
	cov := cal.Calibrator.PredictiveCoverage(theta, cal.MeanSigmaDelta, cal.MeanSigmaEps)
	fmt.Printf("\n--- Figure 16: predictive 95%% band covers %.0f%% of the ground truth ---\n", 100*cov)
	fmt.Printf("    (σδ=%.3f, σε=%.3f in log-case space)\n", cal.MeanSigmaDelta, cal.MeanSigmaEps)

	// --- Figure 17: eight-week forecast from the posterior ensemble ---
	fmt.Println("\n--- Figure 17: 8-week forecast of cumulative confirmed cases ---")
	nCfg := 8 // re-simulate a subset of posterior configs with replicates
	configs := cal.Posterior
	if len(configs) > nCfg {
		stride := len(configs) / nCfg
		sub := make([]core.Params, 0, nCfg)
		for i := 0; i < len(configs) && len(sub) < nCfg; i += stride {
			sub = append(sub, configs[i])
		}
		configs = sub
	}
	pred, err := p.RunPredictionWorkflow(core.PredictionConfig{
		State: "VA", Configs: configs, Replicates: 5,
		Days: 70 + 56, // history + 8 weeks
	})
	if err != nil {
		log.Fatal(err)
	}
	f := pred.Confirmed
	peakHi := 0.0
	for _, v := range f.Hi {
		if v > peakHi {
			peakHi = v
		}
	}
	fmt.Println("week  median [95% band]")
	for w := 0; w < 8; w++ {
		d := 70 + (w+1)*7 - 1
		bar := ""
		if peakHi > 0 {
			bar = strings.Repeat("▒", int(f.Median[d]*40/peakHi))
		}
		fmt.Printf("  +%d   %6.0f [%6.0f, %6.0f] %s\n", w+1, f.Median[d], f.Lo[d], f.Hi[d], bar)
	}
	fmt.Printf("\n(scaled 1:%d — multiply by %d for real-population terms)\n", p.Scale, p.Scale)
}
