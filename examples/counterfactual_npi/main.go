// Counter-factual NPI analysis — the paper's case study 1 (Figure 3,
// "Medical costs of COVID-19"): a factorial design of 2 VHI compliances ×
// 3 lockdown durations × 2 lockdown compliances = 12 cells, each simulated
// with replicates, costed with the medical-cost model.
//
//	go run ./examples/counterfactual_npi
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/econ"
)

func main() {
	p := core.NewPipeline(11, core.WithScale(20000))

	cfg := core.CounterfactualConfig{
		// Two mid-size states stand in for the 51-region national run
		// (scale down the demo; the design structure is identical).
		States:     []string{"VA", "MD"},
		Replicates: 3,
		Days:       100,
		// Calibrated towards R0 ≈ 2.5 (the case study's target).
		Base: core.Params{TAU: 0.2, SYMP: 0.65},
		// The paper's 2 × 3 × 2 factorial design.
		VHICompliances: []float64{0.3, 0.7},
		SHDurations:    []int{30, 60, 90},
		SHCompliances:  []float64{0.5, 0.9},
		SHStart:        15,
	}
	fmt.Printf("factorial design: %d cells × %d states × %d replicates = %d simulations\n",
		len(cfg.FactorialCells()), len(cfg.States), cfg.Replicates,
		len(cfg.FactorialCells())*len(cfg.States)*cfg.Replicates)

	out, err := p.RunCounterfactualWorkflow(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Aggregate each cell's health outcomes and apply the cost model.
	costs := econ.DefaultCosts()
	tallies := map[string]econ.Tally{}
	for _, cell := range out.Cells {
		var t econ.Tally
		for _, s := range out.Sims[cell.Index] {
			tt, err := econ.TallyFromSeries(s.Result.Daily, s.Result.Current)
			if err != nil {
				log.Fatal(err)
			}
			t.Add(tt)
		}
		tallies[cell.Name()] = t
	}
	fmt.Println("\nscenario                          attended  hosp-days  vent-days  deaths   medical cost (1:1 scale)")
	for _, sc := range econ.CompareScenarios(costs, tallies) {
		full := econ.PerCapita(sc.Dollars, p.Scale) / float64(cfg.Replicates) / float64(len(cfg.States))
		fmt.Printf("%-33s %8d %10d %10d %7d   $%.1fM\n",
			sc.Scenario, sc.Tally.AttendedCases, sc.Tally.HospitalDays,
			sc.Tally.VentilatorDays, sc.Tally.Deaths, full/1e6)
	}
	fmt.Println("\n(stronger/longer NPIs reduce medical costs; the paper's companion")
	fmt.Println(" study [9] weighs these against the GDP impact of staying closed)")
}
