// Quickstart: the 60-second tour of the library — build a synthetic
// population, run an agent-based COVID-19 simulation with interventions,
// and print the epidemic curve.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/disease"
	"repro/internal/epihiper"
	"repro/internal/synthpop"
)

func main() {
	// 1. A synthetic population + contact network for Rhode Island at
	// 1:2000 scale (≈500 people), with households, workplaces, schools
	// and the other contact contexts of the paper's Appendix C.
	ri, err := synthpop.StateByCode("RI")
	if err != nil {
		log.Fatal(err)
	}
	cfg := synthpop.DefaultConfig(42)
	cfg.Scale = 2000
	net, err := synthpop.Generate(ri, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d people, %d contact edges, mean degree %.1f\n\n",
		ri.Name, net.NumNodes(), net.NumEdges(), net.MeanDegree())

	// 2. Seed ten infections in the largest county and simulate 150 days
	// of the CDC best-guess COVID-19 model, with voluntary home
	// isolation, school closure and a 60%-compliant stay-at-home order
	// from day 40 to day 100.
	counts := map[int32]int{}
	for _, p := range net.Persons {
		counts[p.CountyFIPS]++
	}
	var largest int32
	for c, n := range counts {
		if n > counts[largest] {
			largest = c
		}
	}
	sim, err := epihiper.New(epihiper.Config{
		Model:       disease.COVID19(),
		Network:     net,
		Days:        150,
		Parallelism: 4,
		Seed:        7,
		Seeds:       []epihiper.Seeding{{CountyFIPS: largest, Day: 0, Count: 10}},
		Interventions: []epihiper.Intervention{
			&epihiper.VoluntaryHomeIsolation{Compliance: 0.5, IsolationDays: 14},
			&epihiper.SchoolClosure{StartDay: 40, EndDay: 100},
			&epihiper.StayAtHome{StartDay: 40, EndDay: 100, Compliance: 0.6},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	// 3. Print the daily infectious prevalence as an ASCII epicurve.
	fmt.Println("day  infectious prevalence")
	peak := int32(0)
	for d := 0; d < res.Days; d++ {
		cur := res.Current[d][disease.Symptomatic] +
			res.Current[d][disease.Presymptomatic] +
			res.Current[d][disease.Asymptomatic]
		if cur > peak {
			peak = cur
		}
	}
	for d := 0; d < res.Days; d += 4 {
		cur := res.Current[d][disease.Symptomatic] +
			res.Current[d][disease.Presymptomatic] +
			res.Current[d][disease.Asymptomatic]
		bar := 0
		if peak > 0 {
			bar = int(cur * 50 / peak)
		}
		fmt.Printf("%3d  %4d %s\n", d, cur, strings.Repeat("█", bar))
	}
	fmt.Printf("\ntotal infections: %d of %d (%.1f%%), deaths: %d\n",
		res.TotalInfections, net.NumNodes(),
		100*epihiper.Attack(res, net.NumNodes()),
		sim.CumulativeCount(disease.Dead))
}
