// Dendogram analysis: the transmission trees EpiHiper emits ("dendograms
// are part of this output, which are transmission trees rooted at initial
// infections") support the post-simulation analytics that feed the
// workflow's policy products — the effective reproduction number over
// time, generation intervals, and superspreading structure.
//
//	go run ./examples/dendogram_analysis
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"repro/internal/disease"
	"repro/internal/epihiper"
	"repro/internal/output"
	"repro/internal/synthpop"
)

func main() {
	md, err := synthpop.StateByCode("MD")
	if err != nil {
		log.Fatal(err)
	}
	cfg := synthpop.DefaultConfig(8)
	cfg.Scale = 4000
	net, err := synthpop.Generate(md, cfg)
	if err != nil {
		log.Fatal(err)
	}

	counts := map[int32]int{}
	for _, p := range net.Persons {
		counts[p.CountyFIPS]++
	}
	var largest int32
	for c, n := range counts {
		if n > counts[largest] {
			largest = c
		}
	}
	logRec := &output.TransitionLog{}
	const days = 120
	sim, err := epihiper.New(epihiper.Config{
		Model: disease.COVID19(), Network: net, Days: days,
		Parallelism: 4, Seed: 17,
		Seeds:    []epihiper.Seeding{{CountyFIPS: largest, Day: 0, Count: 10}},
		Recorder: logRec,
		Interventions: []epihiper.Intervention{
			// A stay-at-home order mid-epidemic so Rt visibly drops.
			&epihiper.StayAtHome{StartDay: 45, EndDay: 90, Compliance: 0.7},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d people, %d infections over %d days\n\n",
		md.Name, net.NumNodes(), res.TotalInfections, days)

	d := output.BuildDendogram(logRec, disease.Exposed)
	fmt.Printf("transmission forest: %d trees, %d infected, depth %d\n",
		len(d.Roots), d.Size(), d.Depth())
	fmt.Printf("mean generation interval: %.1f days\n", d.MeanGenerationInterval())
	if k := d.Dispersion(); !math.IsInf(k, 1) && !math.IsNaN(k) {
		fmt.Printf("offspring dispersion k: %.2f (k ≪ 1 ⇒ superspreading)\n", k)
	} else {
		fmt.Println("offspring dispersion: Poisson-like (no overdispersion)")
	}

	fmt.Println("\nweekly effective reproduction number (SH order days 45–90):")
	rt := d.RtSeries(days, 7)
	for w, v := range rt {
		if math.IsNaN(v) || w >= len(rt)-2 { // skip empty / right-censored
			continue
		}
		bar := strings.Repeat("■", int(v*12))
		marker := ""
		if w*7 <= 45 && 45 < (w+1)*7 {
			marker = "  ← SH order starts"
		}
		fmt.Printf("  week %2d  Rt=%.2f %s%s\n", w+1, v, bar, marker)
	}

	fmt.Println("\ntop spreaders:")
	for _, sp := range d.TopSpreaders(5) {
		p := net.Persons[sp.PID]
		fmt.Printf("  person %4d (age %2d, county %d): %d secondary cases, subtree %d\n",
			sp.PID, p.Age, p.CountyFIPS, sp.Secondary, d.SubtreeSize(sp.PID))
	}
}
