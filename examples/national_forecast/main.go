// National metapopulation forecast — the paper's case study 2: county-level
// SEIR dynamics calibrated by direct-simulation MCMC, projected under the
// five social-distancing scenarios the case study models (one worst case
// plus {two end dates} × {two transmissibility reductions}).
//
//	go run ./examples/national_forecast
package main

import (
	"fmt"
	"log"

	"repro/internal/metapop"
	"repro/internal/surveillance"
	"repro/internal/synthpop"
)

func main() {
	st, err := synthpop.StateByCode("VA")
	if err != nil {
		log.Fatal(err)
	}
	model, err := metapop.NewFromState(st, 0.85)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metapopulation SEIR: %s, %d counties, gravity commuting coupling\n",
		st.Name, len(model.Counties))

	// Ground truth through day 80 (the calibration window).
	truthCfg := surveillance.DefaultConfig(3)
	truth, err := surveillance.GenerateState(st, truthCfg)
	if err != nil {
		log.Fatal(err)
	}
	train := truth.TruncateTo(80)

	// Calibrate transmissibility and detection (Appendix E: per-county
	// Gaussian likelihood with sd = 20% of daily counts, uniform priors,
	// Metropolis updates).
	seeds := []metapop.Seed{{CountyIndex: 0, Infectious: 20}}
	res, err := model.Calibrate(train, metapop.CalibConfig{
		BetaLo: 0.15, BetaHi: 0.9,
		DetectLo: 0.05, DetectHi: 0.5,
		Days: 80, Seeds: seeds,
		Steps: 400, BurnIn: 400, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated: MAP beta=%.3f detect=%.3f (R0=%.2f), acceptance %.2f, %d posterior draws\n",
		res.MAP.Beta, res.MAP.Detect, res.MAP.R0(), res.AcceptRate, len(res.Posterior))

	// The five scenarios of the case study: worst case (no distancing)
	// and intense social distancing from day 54 (March 15) with two end
	// dates (April 30 ≈ day 100, June 10 ≈ day 141) × two reductions
	// (25%, 50%).
	horizon := 200
	scenarios := map[string][]metapop.Scenario{
		"worst-case (no distancing)": nil,
		"SD to Apr 30, -25%":         {{Name: "sd", Start: 54, End: 100, Factor: 0.75}},
		"SD to Apr 30, -50%":         {{Name: "sd", Start: 54, End: 100, Factor: 0.50}},
		"SD to Jun 10, -25%":         {{Name: "sd", Start: 54, End: 141, Factor: 0.75}},
		"SD to Jun 10, -50%":         {{Name: "sd", Start: 54, End: 141, Factor: 0.50}},
	}
	order := []string{
		"worst-case (no distancing)",
		"SD to Apr 30, -25%", "SD to Apr 30, -50%",
		"SD to Jun 10, -25%", "SD to Jun 10, -50%",
	}
	// Thin the posterior for the ensemble runs.
	post := res.Posterior
	if len(post) > 30 {
		thin := make([]metapop.Params, 0, 30)
		for i := 0; i < len(post) && len(thin) < 30; i += len(post) / 30 {
			thin = append(thin, post[i])
		}
		post = thin
	}
	fmt.Printf("\nprojections to day %d (cumulative confirmed, median [95%% band]):\n", horizon)
	for _, name := range order {
		lo, med, hi, err := model.PredictBand(post, horizon, seeds, scenarios[name])
		if err != nil {
			log.Fatal(err)
		}
		last := horizon - 1
		fmt.Printf("  %-28s %9.0f [%9.0f, %9.0f]\n", name, med[last], lo[last], hi[last])
	}
	fmt.Println("\n(stronger and longer distancing lowers the final count; lifting")
	fmt.Println(" early trades near-term relief for a larger eventual epidemic)")
}
