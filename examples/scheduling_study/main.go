// Scheduling study — the Section V / Figure 9 reproduction as a runnable
// example: pack a night of ⟨cell, region⟩ tasks with NFDT-DC and FFDT-DC,
// execute both on the simulated Bridges allocation, and render the
// utilization CDFs over many nights.
//
//	go run ./examples/scheduling_study
package main

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/sched"
	"repro/internal/stats"
)

func main() {
	spec := cluster.Bridges()
	window := cluster.NightlyWindow()
	fmt.Printf("remote cluster: %s (%d nodes / %d cores), window %dh\n\n",
		spec.Name, spec.Nodes, spec.TotalCores(), window.Hours())

	const nights = 9 // the paper reports 9 all-state workflow runs
	var nf, ff []float64
	for night := 0; night < nights; night++ {
		w := sched.Workload{Cells: 12, Replicates: 15,
			Time: sched.DefaultTimeModel(), MaxInterventionFactor: 4}
		tasks := w.Tasks(stats.NewRNG(uint64(night) + 100))
		c := sched.Constraints{TotalNodes: spec.Nodes, DBBound: sched.DefaultDBBounds(16)}

		nfSched, err := sched.NFDTDC(tasks, c)
		if err != nil {
			panic(err)
		}
		ffSched, err := sched.FFDTDC(tasks, c)
		if err != nil {
			panic(err)
		}
		nfRes := cluster.ExecuteLevelSync(nfSched, 0)
		ffRes, err := cluster.ExecuteBackfill(cluster.FlattenSchedule(ffSched), c, 0)
		if err != nil {
			panic(err)
		}
		nf = append(nf, nfRes.Utilization)
		ff = append(ff, ffRes.Utilization)
	}

	fmt.Println("Figure 9 (left): utilization CDF over all-state nights")
	plotCDF := func(name string, xs []float64) {
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		fmt.Printf("  %s\n", name)
		for i, u := range s {
			frac := float64(i+1) / float64(len(s))
			fmt.Printf("    %5.1f%% util  CDF %.2f %s\n", 100*u, frac,
				strings.Repeat("·", int(40*frac)))
		}
		fmt.Printf("    median %.3f%%\n", 100*stats.Median(xs))
	}
	plotCDF("NFDT-DC (initial runs; paper: 44.237–55.579%)", nf)
	plotCDF("FFDT-DC (largest first + backfill; paper median: 96.698%)", ff)

	// The decomposition story of Section V, Step 1: the conflict graph of
	// one region's tasks is a clique; the r-relaxed coloring gives the
	// number of time slots a region needs under its DB bound.
	fmt.Println("\nr-relaxed coloring of one region's 12-task clique:")
	for _, r := range []int{1, 3, 11} {
		colors, err := sched.CliqueColoring(12, r)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  r=%2d → %d time slots\n", r, sched.NumColors(colors))
	}
}
