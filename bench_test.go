// Package repro's root benchmark harness regenerates the performance
// tables and figures of the paper's evaluation (Sections VI and III).
// Each benchmark maps to one table or figure; EXPERIMENTS.md records the
// paper-vs-measured comparison. Domain quantities (utilization, counts,
// bytes) are emitted as custom benchmark metrics alongside ns/op.
//
// Run everything:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/disease"
	"repro/internal/epihiper"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/synthpop"
)

// benchNetwork generates a state network at the given scale, cached across
// benchmark iterations.
var netCache = map[string]*synthpop.Network{}

func benchNetwork(b *testing.B, state string, scale int) *synthpop.Network {
	b.Helper()
	key := fmt.Sprintf("%s/%d", state, scale)
	if n, ok := netCache[key]; ok {
		return n
	}
	st, err := synthpop.StateByCode(state)
	if err != nil {
		b.Fatal(err)
	}
	cfg := synthpop.DefaultConfig(1234)
	cfg.Scale = scale
	n, err := synthpop.Generate(st, cfg)
	if err != nil {
		b.Fatal(err)
	}
	netCache[key] = n
	return n
}

func seedLargest(net *synthpop.Network, count int) []epihiper.Seeding {
	counts := map[int32]int{}
	for i := range net.Persons {
		counts[net.Persons[i].CountyFIPS]++
	}
	var largest int32
	best := 0
	for c, n := range counts {
		if n > best || (n == best && c < largest) {
			largest, best = c, n
		}
	}
	return []epihiper.Seeding{{CountyFIPS: largest, Day: 0, Count: count}}
}

func runSim(b *testing.B, net *synthpop.Network, par int, ivs []epihiper.Intervention, days int, seed uint64) *epihiper.Result {
	b.Helper()
	sim, err := epihiper.New(epihiper.Config{
		Model: disease.COVID19(), Network: net, Days: days,
		Parallelism: par, Seed: seed,
		Seeds: seedLargest(net, 10), Interventions: ivs,
	})
	if err != nil {
		b.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig6NetworkSizes regenerates Figure 6: node and edge counts of
// the per-state contact networks, smallest (WY) to largest (CA). The
// metrics nodes and edges are the synthetic counts at 1:10000 scale;
// multiply by 1e4 to compare with the figure's 10M/100M axes.
func BenchmarkFig6NetworkSizes(b *testing.B) {
	for _, state := range []string{"WY", "DC", "RI", "KS", "CT", "MD", "VA", "PA", "TX", "CA"} {
		b.Run(state, func(b *testing.B) {
			st, err := synthpop.StateByCode(state)
			if err != nil {
				b.Fatal(err)
			}
			cfg := synthpop.DefaultConfig(1234)
			cfg.Scale = 10000
			var net *synthpop.Network
			for i := 0; i < b.N; i++ {
				net, err = synthpop.Generate(st, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(net.NumNodes()), "nodes")
			b.ReportMetric(float64(net.NumEdges()), "edges")
			b.ReportMetric(net.MeanDegree(), "degree")
		})
	}
}

// BenchmarkFig7TopRuntimeVsSize regenerates Figure 7 (top): EpiHiper
// running time against network size at a fixed number of processing units.
// The paper's finding: time is linear in input size.
func BenchmarkFig7TopRuntimeVsSize(b *testing.B) {
	// Increasing sizes via decreasing scale on one populous state.
	for _, scale := range []int{40000, 20000, 10000, 5000, 2500} {
		net := benchNetwork(b, "TX", scale)
		b.Run(fmt.Sprintf("nodes=%d", net.NumNodes()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runSim(b, net, 4, nil, 60, uint64(i))
			}
			b.ReportMetric(float64(net.NumNodes()), "nodes")
		})
	}
}

// BenchmarkFig7MiddleStrongScaling regenerates Figure 7 (middle): speedup
// with processing units for three medium-to-large networks, with the
// paper's diminishing returns beyond a size-dependent point.
func BenchmarkFig7MiddleStrongScaling(b *testing.B) {
	for _, state := range []string{"MD", "VA", "CA"} {
		net := benchNetwork(b, state, 2500)
		for _, pu := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/pu=%d", state, pu), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runSim(b, net, pu, nil, 40, 7)
				}
				b.ReportMetric(float64(net.NumNodes()), "nodes")
			})
		}
	}
}

// BenchmarkFig7BottomInterventions regenerates Figure 7 (bottom): running
// time with increasingly complex interventions. Base = VHI + SC + SH;
// RO and TA add marginal cost; PS and D1CT are significantly slower;
// D2CT approaches the paper's ≈300% increase.
func BenchmarkFig7BottomInterventions(b *testing.B) {
	net := benchNetwork(b, "VA", 2000)
	base := func() []epihiper.Intervention {
		return epihiper.BaseCaseInterventions(10, 80, 0.3, 0.3)
	}
	cases := []struct {
		name string
		ivs  func() []epihiper.Intervention
	}{
		{"base", base},
		{"RO", func() []epihiper.Intervention {
			ivs := base()
			sh := ivs[2].(*epihiper.StayAtHome)
			return append(ivs, &epihiper.PartialReopen{SH: sh, ReopenDay: 50, Level: 0.5})
		}},
		{"TA", func() []epihiper.Intervention {
			return append(base(), &epihiper.TestAndIsolate{DailyDetectRate: 0.3, IsolationDays: 14})
		}},
		{"PS", func() []epihiper.Intervention {
			ivs := base()[:2] // VHI + SC; PS replaces SH
			return append(ivs, &epihiper.PulsingShutdown{StartDay: 10, EndDay: 80, PeriodDays: 14, Compliance: 0.6})
		}},
		// For the tracing cases the paper measures the cost of the
		// intervention machinery on a live epidemic: tracing detects
		// most cases (BFS over 1–2 hops per detection) while short,
		// partial isolation keeps the epidemic running, as in a large
		// population where tracing capacity saturates.
		{"D1CT", func() []epihiper.Intervention {
			return append(base(), &epihiper.ContactTracing{Distance: 1, DetectProb: 0.9, TraceCompliance: 0.05, IsolationDays: 3})
		}},
		{"D2CT", func() []epihiper.Intervention {
			return append(base(), &epihiper.ContactTracing{Distance: 2, DetectProb: 0.9, TraceCompliance: 0.05, IsolationDays: 3})
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var infections int64
			for i := 0; i < b.N; i++ {
				res := runSim(b, net, 4, c.ivs(), 90, 11)
				infections = res.TotalInfections
			}
			b.ReportMetric(float64(infections), "infections")
		})
	}
}

// BenchmarkFig8StateRuntimes regenerates Figure 8: the per-state runtime
// distribution across cells. Per-state modeled runtimes (seconds at full
// scale) are reported; the bench itself exercises the time model across
// every region and cell.
func BenchmarkFig8StateRuntimes(b *testing.B) {
	for _, state := range []string{"AK", "RI", "KS", "MD", "VA", "NY", "TX", "CA"} {
		b.Run(state, func(b *testing.B) {
			st, err := synthpop.StateByCode(state)
			if err != nil {
				b.Fatal(err)
			}
			nodes := sched.NodesForRegion(st.Population)
			tm := sched.DefaultTimeModel()
			r := stats.NewRNG(99)
			var times []float64
			for i := 0; i < b.N; i++ {
				times = times[:0]
				for cell := 0; cell < 12; cell++ {
					f := 1 + 3*float64(cell)/11
					tmc := tm
					tmc.InterventionFactor = f
					times = append(times, tmc.Sample(st.Population, nodes, r))
				}
			}
			b.ReportMetric(stats.Mean(times), "mean_s")
			b.ReportMetric(stats.StdDev(times), "sd_s")
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

// BenchmarkFig9Utilization regenerates Figure 9: CPU utilization of the
// nightly all-state workloads under the two production scheduling
// configurations. Paper: FFDT-DC median 96.698%, initial NFDT-DC runs
// 44.237–55.579%.
func BenchmarkFig9Utilization(b *testing.B) {
	mk := func(seed uint64) ([]sched.Task, sched.Constraints) {
		w := sched.Workload{Cells: 12, Replicates: 15,
			Time: sched.DefaultTimeModel(), MaxInterventionFactor: 4}
		return w.Tasks(stats.NewRNG(seed)),
			sched.Constraints{TotalNodes: cluster.Bridges().Nodes, DBBound: sched.DefaultDBBounds(16)}
	}
	b.Run("FFDT-DC", func(b *testing.B) {
		var utils []float64
		for i := 0; i < b.N; i++ {
			utils = utils[:0]
			for night := uint64(0); night < 9; night++ {
				tasks, c := mk(night)
				s, err := sched.FFDTDC(tasks, c)
				if err != nil {
					b.Fatal(err)
				}
				res, err := cluster.ExecuteBackfill(cluster.FlattenSchedule(s), c, 0)
				if err != nil {
					b.Fatal(err)
				}
				utils = append(utils, res.Utilization)
			}
		}
		b.ReportMetric(100*stats.Median(utils), "median_util_%")
	})
	b.Run("NFDT-DC", func(b *testing.B) {
		var utils []float64
		for i := 0; i < b.N; i++ {
			utils = utils[:0]
			for night := uint64(0); night < 9; night++ {
				tasks, c := mk(night)
				s, err := sched.NFDTDC(tasks, c)
				if err != nil {
					b.Fatal(err)
				}
				res := cluster.ExecuteLevelSync(s, 0)
				utils = append(utils, res.Utilization)
			}
		}
		b.ReportMetric(100*stats.Median(utils), "median_util_%")
	})
	b.Run("VA-only-FFDT-DC", func(b *testing.B) {
		var utils []float64
		for i := 0; i < b.N; i++ {
			utils = utils[:0]
			for night := uint64(0); night < 24; night++ {
				w := sched.Workload{Cells: 300, Replicates: 1,
					Time: sched.DefaultTimeModel(), MaxInterventionFactor: 4}
				all := w.Tasks(stats.NewRNG(night + 50))
				var tasks []sched.Task
				for _, t := range all {
					if t.Region == "VA" {
						tasks = append(tasks, t)
					}
				}
				c := sched.Constraints{TotalNodes: cluster.Bridges().Nodes, DBBound: map[string]int{"VA": 180}}
				s, err := sched.FFDTDC(tasks, c)
				if err != nil {
					b.Fatal(err)
				}
				res, err := cluster.ExecuteBackfill(cluster.FlattenSchedule(s), c, 0)
				if err != nil {
					b.Fatal(err)
				}
				utils = append(utils, res.Utilization)
			}
		}
		b.ReportMetric(100*stats.Median(utils), "median_util_%")
	})
}

// BenchmarkFig10Memory regenerates Figure 10: modeled memory over
// simulation steps — growth at intervention trigger points, scaling with
// compliance (left panel) and with network size (right panel).
func BenchmarkFig10Memory(b *testing.B) {
	for _, compliance := range []float64{0.3, 0.6, 0.9} {
		b.Run(fmt.Sprintf("VA-compliance=%.1f", compliance), func(b *testing.B) {
			net := benchNetwork(b, "VA", 4000)
			var peak, start int64
			for i := 0; i < b.N; i++ {
				sim, err := epihiper.New(epihiper.Config{
					Model: disease.COVID19(), Network: net, Days: 90,
					Parallelism: 4, Seed: 3,
					Seeds: seedLargest(net, 10),
					Interventions: []epihiper.Intervention{
						&epihiper.StayAtHome{StartDay: 20, EndDay: 80, Compliance: compliance},
						&epihiper.VoluntaryHomeIsolation{Compliance: compliance, IsolationDays: 14},
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run()
				if err != nil {
					b.Fatal(err)
				}
				peak = res.PeakMemoryBytes
				start = sim.MemoryTrace()[0]
			}
			b.ReportMetric(float64(start)/1e6, "start_MB")
			b.ReportMetric(float64(peak)/1e6, "peak_MB")
		})
	}
	for _, state := range []string{"RI", "VA", "TX"} {
		b.Run("state-"+state, func(b *testing.B) {
			net := benchNetwork(b, state, 10000)
			var peak int64
			for i := 0; i < b.N; i++ {
				res := runSim(b, net, 4, epihiper.BaseCaseInterventions(20, 80, 0.6, 0.6), 90, 5)
				peak = res.PeakMemoryBytes
			}
			b.ReportMetric(float64(peak)/1e6, "peak_MB")
			b.ReportMetric(float64(net.NumNodes()), "nodes")
		})
	}
}
